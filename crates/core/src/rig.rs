//! Uniform interface over the four PDS configurations: set per-SM load
//! currents, step the circuit, read SM voltages, and split the energy ledger
//! into the paper's loss categories.

use vs_circuit::{
    Integration, RecoveryPolicy, SolverError, SolverWorkspace, StepReport, Transient,
};
use vs_pds::{
    ivr_efficiency, level_shifter_fraction, vrm_efficiency, AreaModel, CrIvrConfig, PdnParams,
    SingleLayerPdn, StackedPdn,
};

use crate::config::PdsKind;

/// Delivery voltage at the die for the single-layer IVR configuration; the
/// on-chip IVR steps it down to the SM's 1 V (handled analytically).
const IVR_DELIVERY_V: f64 = 1.7;
/// Board-VRM efficiency when producing the easier high-voltage IVR input.
const HV_VRM_EFFICIENCY: f64 = 0.96;
/// Switching (bottom-plate + gate-drive) loss of the CR-IVR ladder as a
/// fraction of the charge throughput it serves; a free-running
/// switched-capacitor converter moves every coulomb of load charge through
/// its flying caps at ~97-98% intrinsic efficiency.
const CRIVR_SWITCHING_FRACTION: f64 = 0.025;

/// Energy ledger of a finished run, in joules, split the way the paper's
/// Fig. 8 breakdown is.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    /// Energy drawn from the board supply (input to the PDS).
    pub board_input_j: f64,
    /// Energy actually absorbed by SM loads (useful + architectural waste).
    pub sm_load_j: f64,
    /// Conversion loss in the board VRM (conventional/IVR configs).
    pub vrm_loss_j: f64,
    /// On-chip IVR conversion loss (single-layer IVR config).
    pub ivr_loss_j: f64,
    /// Resistive PDN loss.
    pub pdn_loss_j: f64,
    /// CR-IVR switched-capacitor conversion loss (stacked configs).
    pub crivr_loss_j: f64,
    /// CR-IVR static overhead (gate drive / control).
    pub crivr_overhead_j: f64,
    /// Level-shifter interface overhead (stacked configs).
    pub level_shifter_j: f64,
    /// Voltage-smoothing controller + detector overhead.
    pub controller_j: f64,
    /// Energy burned in DCC ballast DACs.
    pub dcc_j: f64,
    /// Energy burned executing fake (injected) instructions.
    pub fake_j: f64,
}

impl EnergyLedger {
    /// Useful energy: what reached the SMs minus the architectural waste
    /// spent to make delivery work.
    pub fn useful_j(&self) -> f64 {
        self.sm_load_j - self.dcc_j - self.fake_j
    }

    /// System-level power delivery efficiency.
    pub fn pde(&self) -> f64 {
        if self.board_input_j <= 0.0 {
            0.0
        } else {
            self.useful_j() / self.board_input_j
        }
    }

    /// Total PDS loss (input minus useful).
    pub fn total_loss_j(&self) -> f64 {
        self.board_input_j - self.useful_j()
    }
}

enum RigKind {
    Single {
        pdn: SingleLayerPdn,
        /// Ratio of SM power to load power crossing the PDN (1 for
        /// conventional; 1/eta_ivr at the higher delivery voltage for IVR).
        is_ivr: bool,
    },
    Stacked {
        pdn: StackedPdn,
        crivr: CrIvrConfig,
        area: AreaModel,
    },
}

/// A PDS under co-simulation: netlist + running transient + accounting.
pub struct PdsRig {
    kind: RigKind,
    sim: Transient,
    n_sms: usize,
    fake_j: f64,
    dcc_power_w: Vec<f64>,
    controller_power_w: f64,
    elapsed_controller_j: f64,
    dt: f64,
    recovery: RecoveryPolicy,
    /// Nominal per-stage recycler conductances (stacked rigs), indexed like
    /// `StackedPdn::recyclers`; the baseline that fault scaling works from.
    nominal_recycler_g: Vec<f64>,
}

impl PdsRig {
    /// Builds the rig for a PDS kind with the default electrical parameters,
    /// stepping at `dt` seconds per GPU cycle.
    pub fn new(kind: PdsKind, dt: f64, controller_power_w: f64) -> Self {
        Self::with_params(kind, &PdnParams::default(), dt, controller_power_w)
    }

    /// Like [`PdsRig::new`], but constructing the circuit solver inside a
    /// reusable [`SolverWorkspace`] (preallocated buffers plus the cached DC
    /// operating point of the previous run with the same netlist).
    pub fn new_in(
        kind: PdsKind,
        dt: f64,
        controller_power_w: f64,
        workspace: SolverWorkspace,
    ) -> Self {
        Self::with_params_in(kind, &PdnParams::default(), dt, controller_power_w, workspace)
    }

    /// Builds the rig with explicit electrical parameters (used by the
    /// stack-depth and topology ablations).
    pub fn with_params(
        kind: PdsKind,
        params: &PdnParams,
        dt: f64,
        controller_power_w: f64,
    ) -> Self {
        Self::with_params_in(kind, params, dt, controller_power_w, SolverWorkspace::new())
    }

    /// [`PdsRig::with_params`] on a reusable [`SolverWorkspace`]. Reuse
    /// never changes results: the solver re-initializes every buffer from
    /// the netlist, and the DC cache only applies on an exact netlist
    /// fingerprint match.
    pub fn with_params_in(
        kind: PdsKind,
        params: &PdnParams,
        dt: f64,
        controller_power_w: f64,
        workspace: SolverWorkspace,
    ) -> Self {
        let params = *params;
        let n_sms = params.n_sms();
        match kind {
            PdsKind::ConventionalVrm | PdsKind::SingleLayerIvr => {
                let is_ivr = matches!(kind, PdsKind::SingleLayerIvr);
                let v = if is_ivr { IVR_DELIVERY_V } else { params.v_sm };
                let pdn = SingleLayerPdn::build(&params, v);
                let sim =
                    Transient::new_in(&pdn.netlist, dt, Integration::Trapezoidal, workspace)
                        .expect("single-layer PDN is well-formed");
                PdsRig {
                    kind: RigKind::Single { pdn, is_ivr },
                    sim,
                    n_sms,
                    fake_j: 0.0,
                    dcc_power_w: vec![0.0; n_sms],
                    controller_power_w,
                    elapsed_controller_j: 0.0,
                    dt,
                    recovery: RecoveryPolicy::default(),
                    nominal_recycler_g: Vec::new(),
                }
            }
            PdsKind::VsCircuitOnly { area_mult } | PdsKind::VsCrossLayer { area_mult } => {
                let area = AreaModel::default();
                let crivr = CrIvrConfig::sized_by_gpu_area(area_mult, &area);
                let pdn = StackedPdn::build(&params, Some((&crivr, &area)));
                let (v0, g2) = pdn.balanced_initial_state();
                let sim = Transient::with_initial_state_in(
                    &pdn.netlist,
                    dt,
                    Integration::Trapezoidal,
                    &v0,
                    &g2,
                    workspace,
                )
                .expect("stacked PDN is well-formed");
                let nominal_recycler_g = pdn
                    .recyclers
                    .iter()
                    .map(|id| sim.recycler_conductance(*id).expect("recycler element"))
                    .collect();
                PdsRig {
                    kind: RigKind::Stacked { pdn, crivr, area },
                    sim,
                    n_sms,
                    fake_j: 0.0,
                    dcc_power_w: vec![0.0; n_sms],
                    controller_power_w,
                    elapsed_controller_j: 0.0,
                    dt,
                    recovery: RecoveryPolicy::default(),
                    nominal_recycler_g,
                }
            }
        }
    }

    /// Number of SMs served.
    pub fn n_sms(&self) -> usize {
        self.n_sms
    }

    /// Stack topology (layers, columns) for stacked rigs; `(1, 16)` for
    /// single-layer rigs.
    pub fn topology(&self) -> (usize, usize) {
        match &self.kind {
            RigKind::Single { .. } => (1, self.n_sms),
            RigKind::Stacked { pdn, .. } => (pdn.params.n_layers, pdn.params.n_columns),
        }
    }

    /// Applies one GPU cycle's per-SM powers (watts, layer-major for stacked
    /// rigs) plus per-SM DCC ballast powers, then steps the circuit.
    ///
    /// Following the paper's convention, each SM is a *time-varying ideal
    /// current source*: its current is the cycle's power divided by the
    /// nominal layer voltage (a constant-power `I = P/V(t)` load has a
    /// negative differential conductance that no realistic regulator
    /// stabilizes in a series stack — and real CMOS current rises with
    /// voltage, not the reverse).
    ///
    /// `fake_power_w` is the share of each SM's power spent on injected
    /// instructions (tracked as waste).
    ///
    /// Solver trouble is handled by the rig's [`RecoveryPolicy`] (set with
    /// [`PdsRig::set_recovery_policy`]); the returned [`StepReport`] says
    /// what recovery it took to accept the step. An `Err` means the solver
    /// gave up and the rig is left at the last accepted state.
    ///
    /// # Errors
    ///
    /// Propagates the [`SolverError`] of the final failed attempt (wrapped
    /// in [`SolverError::RecoveryExhausted`] when retries were allowed).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the SM count.
    pub fn step(
        &mut self,
        sm_power_w: &[f64],
        dcc_power_w: &[f64],
        fake_power_w: &[f64],
    ) -> Result<StepReport, SolverError> {
        self.stage_loads(sm_power_w, dcc_power_w, fake_power_w);
        let report = self.sim.step_with_recovery(&self.recovery)?;
        self.finish_step(fake_power_w);
        Ok(report)
    }

    /// First phase of [`PdsRig::step`]: validates the slices and stages this
    /// cycle's loads onto the solver's control inputs without stepping.
    /// The batched co-simulation driver stages every lane, advances all of
    /// them through one SoA solve, then settles each with
    /// [`PdsRig::finish_step`]; `step` is exactly this composition, so the
    /// split cannot change scalar results.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the SM count.
    pub(crate) fn stage_loads(
        &mut self,
        sm_power_w: &[f64],
        dcc_power_w: &[f64],
        fake_power_w: &[f64],
    ) {
        assert_eq!(sm_power_w.len(), self.n_sms);
        assert_eq!(dcc_power_w.len(), self.n_sms);
        assert_eq!(fake_power_w.len(), self.n_sms);
        match &self.kind {
            RigKind::Single { pdn, is_ivr } => {
                let v = pdn.v_delivery;
                for sm in 0..self.n_sms {
                    // For the IVR config the PDN carries the IVR's *input*
                    // power at the delivery voltage.
                    let p = if *is_ivr {
                        sm_power_w[sm] / ivr_efficiency(load_fraction(sm_power_w))
                    } else {
                        sm_power_w[sm]
                    };
                    self.sim.set_control(pdn.sm_load[sm], p / v);
                }
            }
            RigKind::Stacked { pdn, .. } => {
                let v = pdn.params.vdd_stack / pdn.params.n_layers as f64;
                for sm in 0..self.n_sms {
                    let layer = sm / pdn.params.n_columns;
                    let col = sm % pdn.params.n_columns;
                    self.sim
                        .set_control(pdn.sm_load[layer][col], sm_power_w[sm] / v);
                    self.sim
                        .set_control(pdn.dcc[layer][col], dcc_power_w[sm] / v);
                }
            }
        }
        self.dcc_power_w.copy_from_slice(dcc_power_w);
    }

    /// Last phase of [`PdsRig::step`]: books the accepted step's fake and
    /// controller energy. Call only after the staged step was accepted (the
    /// scalar path skips it on error, and so must batch drivers).
    pub(crate) fn finish_step(&mut self, fake_power_w: &[f64]) {
        self.fake_j += fake_power_w.iter().sum::<f64>() * self.dt;
        self.elapsed_controller_j += self.controller_power_w * self.dt;
    }

    /// The underlying transient solver, for the batched driver that advances
    /// several rigs' staged steps through one SoA kernel.
    pub(crate) fn solver_mut(&mut self) -> &mut Transient {
        &mut self.sim
    }

    /// Replaces the adaptive solver-recovery policy (default:
    /// [`RecoveryPolicy::default`]; use [`RecoveryPolicy::disabled`] to make
    /// every solver hiccup surface immediately).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The active solver-recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Scales one column's CR-IVR ladder to `factor` of its nominal
    /// conductance (0.0 takes the sub-IVR offline, 1.0 restores it).
    /// Returns `Ok(false)` when there is nothing to scale: a single-layer
    /// rig, a column beyond the stack, or one without a ladder.
    ///
    /// # Errors
    ///
    /// [`SolverError::InvalidParameter`] for a negative or non-finite
    /// factor; [`SolverError::Singular`] if the retuned matrix cannot be
    /// refactored.
    pub fn scale_column_recyclers(
        &mut self,
        column: usize,
        factor: f64,
    ) -> Result<bool, SolverError> {
        if !(factor.is_finite() && factor >= 0.0) {
            return Err(SolverError::InvalidParameter {
                what: "recycler scale factor must be finite and non-negative",
            });
        }
        let RigKind::Stacked { pdn, .. } = &self.kind else {
            return Ok(false);
        };
        let stages = pdn.column_recyclers(column);
        if stages.is_empty() {
            return Ok(false);
        }
        let start = column * (pdn.params.n_layers - 1);
        for (i, id) in stages.iter().enumerate() {
            let g = self.nominal_recycler_g[start + i] * factor;
            self.sim.set_recycler_conductance(*id, g)?;
        }
        Ok(true)
    }

    /// Per-SM supply voltages at the last step (layer-major for stacked).
    pub fn sm_voltages(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_sms);
        self.sm_voltages_into(&mut out);
        out
    }

    /// [`PdsRig::sm_voltages`] into a reusable buffer (cleared and refilled)
    /// so the per-cycle hot path allocates nothing.
    pub fn sm_voltages_into(&self, out: &mut Vec<f64>) {
        out.clear();
        match &self.kind {
            RigKind::Single { pdn, .. } => {
                out.extend((0..self.n_sms).map(|sm| pdn.sm_voltage(&self.sim, sm)));
            }
            RigKind::Stacked { pdn, .. } => {
                for layer in 0..pdn.params.n_layers {
                    for col in 0..pdn.params.n_columns {
                        out.push(pdn.sm_voltage(&self.sim, layer, col));
                    }
                }
            }
        }
    }

    /// Tears the rig down into the circuit solver's reusable
    /// [`SolverWorkspace`] so the next rig (e.g. the next scenario in a
    /// [`crate::CosimPool`] batch) skips its warm-up allocations.
    pub fn into_workspace(self) -> SolverWorkspace {
        self.sim.into_workspace()
    }

    /// Force-gate (or restore) every SM of one stack layer (worst-case
    /// scenario helper); no-op on single-layer rigs.
    pub fn is_stacked(&self) -> bool {
        matches!(self.kind, RigKind::Stacked { .. })
    }

    /// Elapsed simulated time, seconds.
    pub fn time(&self) -> f64 {
        self.sim.time()
    }

    /// Closes the books: computes the full energy ledger for the run.
    pub fn ledger(&self) -> EnergyLedger {
        let e = self.sim.energy();
        let mut ledger = EnergyLedger {
            fake_j: self.fake_j,
            controller_j: self.elapsed_controller_j,
            ..EnergyLedger::default()
        };
        match &self.kind {
            RigKind::Single { pdn, is_ivr } => {
                let pdn_loss: f64 = pdn
                    .pdn_resistors
                    .iter()
                    .map(|id| self.sim.element_absorbed_j(*id))
                    .sum();
                let load_j: f64 = pdn
                    .sm_load_elems
                    .iter()
                    .map(|id| self.sim.element_absorbed_j(*id))
                    .sum();
                ledger.pdn_loss_j = pdn_loss;
                if *is_ivr {
                    // The loads drew IVR *input* energy; the SMs received
                    // eta_ivr of it.
                    let eta = ivr_efficiency(0.6);
                    ledger.sm_load_j = load_j * eta;
                    ledger.ivr_loss_j = load_j * (1.0 - eta);
                    let vrm_in = e.source_delivered_j / HV_VRM_EFFICIENCY;
                    ledger.vrm_loss_j = vrm_in - e.source_delivered_j;
                    ledger.board_input_j = vrm_in + self.elapsed_controller_j;
                } else {
                    ledger.sm_load_j = load_j;
                    let eta = vrm_efficiency(0.6);
                    let vrm_in = e.source_delivered_j / eta;
                    ledger.vrm_loss_j = vrm_in - e.source_delivered_j;
                    ledger.board_input_j = vrm_in + self.elapsed_controller_j;
                }
            }
            RigKind::Stacked { pdn, crivr, area } => {
                let pdn_loss: f64 = pdn
                    .pdn_resistors
                    .iter()
                    .map(|id| self.sim.element_absorbed_j(*id))
                    .sum();
                let load_j: f64 = pdn
                    .sm_load_elems
                    .iter()
                    .flatten()
                    .map(|id| self.sim.element_absorbed_j(*id))
                    .sum();
                let dcc_j: f64 = pdn
                    .dcc_elems
                    .iter()
                    .flatten()
                    .map(|id| self.sim.element_absorbed_j(*id))
                    .sum();
                ledger.pdn_loss_j = pdn_loss;
                ledger.sm_load_j = load_j + dcc_j;
                ledger.dcc_j = dcc_j;
                // Conversion loss has two parts: the shuffle loss the
                // circuit solver accounts exactly (charge moved between
                // unequal layer voltages) and the free-running ladder's
                // switching loss (bottom-plate parasitics, gate drive),
                // which scales with the charge throughput, i.e. the load.
                let switching_j = CRIVR_SWITCHING_FRACTION * load_j;
                ledger.crivr_loss_j = e.recycler_loss_j + switching_j;
                ledger.crivr_overhead_j = crivr.overhead_power_w(area) * self.sim.time();
                ledger.level_shifter_j = level_shifter_fraction() * load_j;
                // Board feeds the stack directly (no step-down VRM); the
                // level-shifter, switching, and control overheads are extra
                // draw on top of what the netlist's source delivered.
                ledger.board_input_j = e.source_delivered_j
                    + ledger.level_shifter_j
                    + switching_j
                    + ledger.crivr_overhead_j
                    + self.elapsed_controller_j;
            }
        }
        ledger
    }
}

/// Rough load fraction for the efficiency curves: SM-grid power over a
/// 200 W full-scale.
fn load_fraction(sm_power_w: &[f64]) -> f64 {
    (sm_power_w.iter().sum::<f64>() / 200.0).clamp(0.05, 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0 / 700e6;

    fn run_uniform(kind: PdsKind, watts: f64, steps: usize) -> (PdsRig, EnergyLedger) {
        let mut rig = PdsRig::new(kind, DT, 0.08);
        let p = vec![watts; rig.n_sms()];
        let z = vec![0.0; rig.n_sms()];
        for _ in 0..steps {
            rig.step(&p, &z, &z).expect("uniform load steps cleanly");
        }
        let ledger = rig.ledger();
        (rig, ledger)
    }

    #[test]
    fn conventional_pde_near_80_percent() {
        let (_, l) = run_uniform(PdsKind::ConventionalVrm, 8.0, 30_000);
        let pde = l.pde();
        assert!((0.76..=0.84).contains(&pde), "conventional PDE {pde}");
    }

    #[test]
    fn single_layer_ivr_pde_near_85_percent() {
        let (_, l) = run_uniform(PdsKind::SingleLayerIvr, 8.0, 30_000);
        let pde = l.pde();
        assert!((0.82..=0.88).contains(&pde), "IVR PDE {pde}");
    }

    #[test]
    fn stacked_pde_above_90_percent_when_balanced() {
        let (_, l) = run_uniform(PdsKind::VsCrossLayer { area_mult: 0.2 }, 8.0, 30_000);
        let pde = l.pde();
        assert!((0.90..=0.97).contains(&pde), "VS PDE {pde}");
    }

    #[test]
    fn pde_ordering_matches_table3() {
        let (_, conv) = run_uniform(PdsKind::ConventionalVrm, 8.0, 20_000);
        let (_, ivr) = run_uniform(PdsKind::SingleLayerIvr, 8.0, 20_000);
        let (_, vs) = run_uniform(PdsKind::VsCrossLayer { area_mult: 0.2 }, 8.0, 20_000);
        assert!(conv.pde() < ivr.pde());
        assert!(ivr.pde() < vs.pde());
    }

    #[test]
    fn stacked_voltages_stay_balanced_under_uniform_load() {
        let (rig, _) = run_uniform(PdsKind::VsCrossLayer { area_mult: 0.2 }, 8.0, 20_000);
        for v in rig.sm_voltages() {
            assert!((v - 1.025).abs() < 0.05, "SM voltage {v}");
        }
    }

    #[test]
    fn ledger_components_sum_to_input() {
        let (_, l) = run_uniform(PdsKind::VsCrossLayer { area_mult: 0.2 }, 8.0, 10_000);
        let sum = l.useful_j()
            + l.dcc_j
            + l.fake_j
            + l.pdn_loss_j
            + l.crivr_loss_j
            + l.crivr_overhead_j
            + l.level_shifter_j
            + l.controller_j;
        // crivr_loss_j includes the synthetic switching loss, which is also
        // part of board_input_j, so the identity still holds.
        // Reactive storage makes this approximate; within 2%.
        assert!(
            (sum - l.board_input_j).abs() / l.board_input_j < 0.02,
            "ledger sum {sum} vs input {}",
            l.board_input_j
        );
    }

    #[test]
    fn dcc_energy_counts_as_waste() {
        let mut rig = PdsRig::new(PdsKind::VsCrossLayer { area_mult: 0.2 }, DT, 0.0);
        let p = vec![8.0; 16];
        let mut dcc = vec![0.0; 16];
        dcc[12] = 4.0;
        let z = vec![0.0; 16];
        for _ in 0..5_000 {
            rig.step(&p, &dcc, &z).expect("ballast load steps cleanly");
        }
        let l = rig.ledger();
        assert!(l.dcc_j > 0.0);
        assert!(l.useful_j() < l.sm_load_j);
    }
}
