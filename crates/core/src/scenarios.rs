//! Synthetic worst-case imbalance scenario (paper Figs. 9 and 10).
//!
//! All SMs run a steady, balanced load; at the 3 µs mark every SM in one
//! stack layer is power-gated, creating the maximum sustained inter-layer
//! current imbalance the impedance analysis identified as the binding
//! reliability case. The circuit-only design must absorb it entirely in the
//! CR-IVR; the cross-layer design lets the voltage-smoothing loop throttle
//! the loaded layers and ballast the gated one, surviving with a fraction of
//! the regulator area.

use std::fmt;
use std::str::FromStr;

use vs_circuit::Trace;
use vs_control::{ActuatorWeights, ControllerConfig, DetectorKind, VoltageController};
use vs_gpu::WorkloadProfile;

use vs_circuit::SolverWorkspace;

use crate::config::{PdsKind, StackGeometry};
use crate::rig::PdsRig;

/// Typed identifier for the twelve benchmark scenarios of the paper's
/// evaluation (six Rodinia 2.0, six CUDA SDK), in presentation order.
///
/// This replaces the stringly-typed benchmark-name plumbing: experiments
/// pass a `ScenarioId` to [`crate::run_scenario`], and CLIs parse user
/// input with [`FromStr`] / print it with [`fmt::Display`] (both use the
/// historical lowercase names, so existing command lines keep working).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioId {
    /// Back-propagation (Rodinia): dense FFMA layers, barriers, the most
    /// SM-imbalanced profile.
    Backprop,
    /// Breadth-first search (Rodinia): pointer chasing, heavy divergence.
    Bfs,
    /// Heart-wall tracking (Rodinia): compute-dense, the paper's headline
    /// benchmark.
    Heartwall,
    /// HotSpot thermal simulation (Rodinia): stencil with shared-memory
    /// tiling.
    Hotspot,
    /// PathFinder dynamic programming (Rodinia).
    Pathfinder,
    /// SRAD speckle-reducing anisotropic diffusion (Rodinia).
    Srad,
    /// Black-Scholes option pricing (CUDA SDK): SFU-heavy streaming.
    Blackscholes,
    /// Scalar product (CUDA SDK): bandwidth-bound reduction.
    Scalarprod,
    /// Bitonic sorting network (CUDA SDK): barrier-synchronized phases.
    Sortingnet,
    /// Face detection (CUDA SDK sample workload).
    Simpleface,
    /// Fast Walsh transform (CUDA SDK).
    Fastwalsh,
    /// Atomic-intrinsics microbenchmark (CUDA SDK).
    Simpleatomic,
}

impl ScenarioId {
    /// All scenarios in the paper's presentation order (the order
    /// [`vs_gpu::all_benchmarks`] returns).
    pub const ALL: [ScenarioId; 12] = [
        ScenarioId::Backprop,
        ScenarioId::Bfs,
        ScenarioId::Heartwall,
        ScenarioId::Hotspot,
        ScenarioId::Pathfinder,
        ScenarioId::Srad,
        ScenarioId::Blackscholes,
        ScenarioId::Scalarprod,
        ScenarioId::Sortingnet,
        ScenarioId::Simpleface,
        ScenarioId::Fastwalsh,
        ScenarioId::Simpleatomic,
    ];

    /// The scenario's canonical (lowercase) benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioId::Backprop => "backprop",
            ScenarioId::Bfs => "bfs",
            ScenarioId::Heartwall => "heartwall",
            ScenarioId::Hotspot => "hotspot",
            ScenarioId::Pathfinder => "pathfinder",
            ScenarioId::Srad => "srad",
            ScenarioId::Blackscholes => "blackscholes",
            ScenarioId::Scalarprod => "scalarprod",
            ScenarioId::Sortingnet => "sortingnet",
            ScenarioId::Simpleface => "simpleface",
            ScenarioId::Fastwalsh => "fastwalsh",
            ScenarioId::Simpleatomic => "simpleatomic",
        }
    }

    /// The workload profile backing this scenario.
    ///
    /// # Panics
    ///
    /// Never in practice: the catalogue is defined by
    /// [`vs_gpu::all_benchmarks`] and covered by tests.
    pub fn profile(self) -> WorkloadProfile {
        vs_gpu::benchmark(self.name()).expect("scenario catalogue matches vs-gpu benchmarks")
    }
}

impl fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for a benchmark name outside the scenario catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenario {
    /// The rejected name.
    pub name: String,
}

impl fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark {:?}; expected one of: ", self.name)?;
        for (i, id) in ScenarioId::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(id.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownScenario {}

impl FromStr for ScenarioId {
    type Err = UnknownScenario;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioId::ALL
            .into_iter()
            .find(|id| id.name() == s)
            .ok_or_else(|| UnknownScenario {
                name: s.to_string(),
            })
    }
}

/// Worst-case scenario parameters.
#[derive(Debug, Clone)]
pub struct WorstCaseConfig {
    /// CR-IVR area as a multiple of the GPU die.
    pub area_mult: f64,
    /// Stack geometry (series layers × columns).
    pub geometry: StackGeometry,
    /// Use the cross-layer controller (false = circuit-only).
    pub cross_layer: bool,
    /// Control-loop latency, cycles.
    pub latency_cycles: u32,
    /// Actuator weights for the controller.
    pub weights: ActuatorWeights,
    /// Controller trigger threshold, volts.
    pub v_threshold: f64,
    /// Voltage detector option (Table II) for the controller front end.
    pub detector: DetectorKind,
    /// Steady per-SM power before the event, watts.
    pub p_sm_w: f64,
    /// Share of SM power the controller cannot remove (leakage + clock
    /// tree), watts.
    pub p_floor_w: f64,
    /// Event time, seconds (the paper gates at 3 µs).
    pub gate_at_s: f64,
    /// Total simulated span, seconds.
    pub duration_s: f64,
    /// Which layer is gated.
    pub gated_layer: usize,
}

impl Default for WorstCaseConfig {
    fn default() -> Self {
        WorstCaseConfig {
            area_mult: 0.2,
            geometry: StackGeometry::PAPER,
            cross_layer: true,
            latency_cycles: 60,
            weights: ActuatorWeights::new(0.6, 0.0, 0.4),
            v_threshold: 0.9,
            detector: DetectorKind::Oddd,
            p_sm_w: 8.0,
            p_floor_w: 2.5,
            gate_at_s: 3e-6,
            duration_s: 5e-6,
            gated_layer: 0,
        }
    }
}

/// Outcome of a worst-case run.
#[derive(Debug, Clone)]
pub struct WorstCaseResult {
    /// Minimum loaded-SM voltage over time (the Fig. 9 waveform).
    pub trace: Trace,
    /// Worst voltage reached after the gating event, volts.
    pub worst_voltage: f64,
    /// Voltage at the end of the run (post-recovery), volts.
    pub final_voltage: f64,
}

/// Runs the worst-case imbalance scenario.
///
/// # Panics
///
/// Panics if `gated_layer` is out of range for the configured stack.
pub fn run_worst_case(cfg: &WorstCaseConfig) -> WorstCaseResult {
    run_worst_case_in(cfg, SolverWorkspace::new()).0
}

/// [`run_worst_case`] on a reusable [`SolverWorkspace`], returning the
/// workspace when the run finishes so callers sweeping many configurations
/// (the `dse` driver) skip the solver's warm-up allocations on every run
/// after the first. Reuse never changes results.
///
/// # Panics
///
/// Panics if `gated_layer` is out of range for the configured stack.
pub fn run_worst_case_in(
    cfg: &WorstCaseConfig,
    workspace: SolverWorkspace,
) -> (WorstCaseResult, SolverWorkspace) {
    let clock_hz = 700e6;
    let dt = 1.0 / clock_hz;
    let pds = if cfg.cross_layer {
        PdsKind::VsCrossLayer {
            area_mult: cfg.area_mult,
        }
    } else {
        PdsKind::VsCircuitOnly {
            area_mult: cfg.area_mult,
        }
    };
    let mut rig = PdsRig::with_params_in(pds, &cfg.geometry.pdn_params(), dt, 0.08, workspace);
    let (n_layers, n_columns) = rig.topology();
    assert!(cfg.gated_layer < n_layers);
    let n_sms = rig.n_sms();

    let controller_cfg = ControllerConfig {
        v_threshold: cfg.v_threshold,
        weights: cfg.weights,
        latency_cycles: cfg.latency_cycles,
        detector: cfg.detector,
        ..ControllerConfig::default()
    };
    let mut controller = cfg
        .cross_layer
        .then(|| VoltageController::new(controller_cfg.clone()));

    let total_cycles = (cfg.duration_s / dt).round() as u64;
    let gate_cycle = (cfg.gate_at_s / dt).round() as u64;
    let mut trace = Trace::new("min loaded SM voltage");
    let mut worst_after_event = f64::INFINITY;
    let mut sm_watts = vec![cfg.p_sm_w; n_sms];
    let mut dcc_watts = vec![0.0; n_sms];
    let mut fake_watts = vec![0.0; n_sms];
    // Retention power of a fully gated SM.
    let p_gated = 0.075;
    let p_dynamic = (cfg.p_sm_w - cfg.p_floor_w).max(0.0);
    let e_fake_w_per_rate = 4.5e-9 * clock_hz; // one fake SP op per cycle

    for cycle in 0..total_cycles {
        let gated = cycle >= gate_cycle;
        let commands = controller.as_ref().map(|c| c.active_commands().to_vec());
        for layer in 0..n_layers {
            for col in 0..n_columns {
                let sm = layer * n_columns + col;
                if gated && layer == cfg.gated_layer {
                    sm_watts[sm] = p_gated;
                    fake_watts[sm] = 0.0;
                    // The gated SM cannot execute fake instructions, but its
                    // DCC DAC still works.
                    dcc_watts[sm] = commands
                        .as_ref()
                        .map_or(0.0, |c| c[sm].dcc_power_w);
                    continue;
                }
                match &commands {
                    Some(c) => {
                        let width_frac = c[sm].issue_width / 2.0;
                        let fake = c[sm].fake_rate * e_fake_w_per_rate;
                        sm_watts[sm] = cfg.p_floor_w + p_dynamic * width_frac + fake;
                        fake_watts[sm] = fake;
                        dcc_watts[sm] = c[sm].dcc_power_w;
                    }
                    None => {
                        sm_watts[sm] = cfg.p_sm_w;
                        fake_watts[sm] = 0.0;
                        dcc_watts[sm] = 0.0;
                    }
                }
            }
        }
        rig.step(&sm_watts, &dcc_watts, &fake_watts)
            .expect("worst-case scenario steps cleanly");
        let voltages = rig.sm_voltages();
        if let Some(ctrl) = controller.as_mut() {
            ctrl.update(&voltages);
        }
        // Track the minimum voltage among SMs that are still running.
        let mut v_min = f64::INFINITY;
        for layer in 0..n_layers {
            if gated && layer == cfg.gated_layer {
                continue;
            }
            for col in 0..n_columns {
                v_min = v_min.min(voltages[layer * n_columns + col]);
            }
        }
        trace.push(rig.time(), v_min);
        if gated {
            worst_after_event = worst_after_event.min(v_min);
        }
    }

    let result = WorstCaseResult {
        final_voltage: trace.last().unwrap_or(0.0),
        trace,
        worst_voltage: worst_after_event,
    };
    (result, rig.into_workspace())
}

/// Fig. 10 sweep point: worst-case voltage for an (area, latency) pair.
pub fn worst_voltage_for(area_mult: f64, latency_cycles: u32, cross_layer: bool) -> f64 {
    run_worst_case(&WorstCaseConfig {
        area_mult,
        latency_cycles,
        cross_layer,
        ..WorstCaseConfig::default()
    })
    .worst_voltage
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_catalogue_matches_vs_gpu_benchmarks() {
        let names: Vec<String> = vs_gpu::all_benchmarks().into_iter().map(|b| b.name).collect();
        assert_eq!(names.len(), ScenarioId::ALL.len());
        for (id, name) in ScenarioId::ALL.iter().zip(&names) {
            assert_eq!(id.name(), name, "catalogue order drifted");
            assert_eq!(id.profile().name, *name);
        }
    }

    #[test]
    fn scenario_round_trips_through_strings() {
        for id in ScenarioId::ALL {
            assert_eq!(id.to_string().parse::<ScenarioId>(), Ok(id));
        }
        let err = "warpspeed".parse::<ScenarioId>().unwrap_err();
        assert_eq!(err.name, "warpspeed");
        let msg = err.to_string();
        assert!(msg.contains("warpspeed") && msg.contains("backprop"), "{msg}");
    }

    #[test]
    fn circuit_only_needs_large_area() {
        // Fig. 9: with ~2x GPU area the circuit-only design holds 0.8 V;
        // with 0.2x it collapses.
        let big = run_worst_case(&WorstCaseConfig {
            area_mult: 2.0,
            cross_layer: false,
            duration_s: 4.5e-6,
            ..WorstCaseConfig::default()
        });
        let small = run_worst_case(&WorstCaseConfig {
            area_mult: 0.2,
            cross_layer: false,
            duration_s: 4.5e-6,
            ..WorstCaseConfig::default()
        });
        assert!(big.worst_voltage > 0.78, "2x area held {}", big.worst_voltage);
        assert!(
            small.worst_voltage < 0.55,
            "0.2x circuit-only should collapse, held {}",
            small.worst_voltage
        );
    }

    #[test]
    fn cross_layer_survives_with_small_area() {
        let r = run_worst_case(&WorstCaseConfig {
            area_mult: 0.2,
            cross_layer: true,
            ..WorstCaseConfig::default()
        });
        assert!(
            r.worst_voltage > 0.7,
            "cross-layer at 0.2x must hold the guardband region, got {}",
            r.worst_voltage
        );
        // And recover close to nominal by the end of the run.
        assert!(r.final_voltage > 0.78, "final {}", r.final_voltage);
    }

    #[test]
    fn longer_latency_hurts_worst_case() {
        let fast = worst_voltage_for(0.2, 60, true);
        let slow = worst_voltage_for(0.2, 140, true);
        assert!(fast >= slow - 1e-9, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn more_area_never_hurts() {
        let small = worst_voltage_for(0.4, 80, true);
        let large = worst_voltage_for(1.0, 80, true);
        assert!(large >= small - 0.02, "{small} -> {large}");
    }

    #[test]
    fn no_event_before_gate_time() {
        let r = run_worst_case(&WorstCaseConfig {
            duration_s: 2e-6, // ends before the 3 us event
            gate_at_s: 3e-6,
            ..WorstCaseConfig::default()
        });
        // Balanced the whole time: voltage near nominal throughout.
        assert!(r.trace.min() > 0.95, "pre-event min {}", r.trace.min());
        assert!(r.worst_voltage.is_infinite());
    }
}
