//! Property-based tests for the GPU timing simulator's building blocks.

use proptest::prelude::*;
use vs_gpu::{
    all_benchmarks, build_kernel, Cache, CacheConfig, CacheOutcome, DramChannel, DramConfig,
    DramRequest, Gpu, GpuConfig, SchedulerKind, SmControl,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A line is always resident immediately after a read access (allocate
    /// on read), and the number of resident lines never exceeds capacity.
    #[test]
    fn cache_allocates_reads_and_respects_capacity(
        addrs in proptest::collection::vec(0u64..4_096, 1..400),
    ) {
        let cfg = CacheConfig { bytes: 8 * 1024, ways: 4, line_bytes: 128 };
        let capacity_lines = cfg.bytes / cfg.line_bytes;
        let mut cache = Cache::new(cfg, true);
        let mut inserted = std::collections::HashSet::new();
        for &a in &addrs {
            cache.access(a, false);
            prop_assert!(cache.probe(a), "line {a} must be resident after read");
            inserted.insert(a);
        }
        let resident = inserted.iter().filter(|a| cache.probe(**a)).count();
        prop_assert!(resident <= capacity_lines, "{resident} > {capacity_lines}");
    }

    /// Re-accessing the same line is always a hit until capacity pressure
    /// evicts it; with a working set within one set's ways it never evicts.
    #[test]
    fn cache_small_working_set_always_hits(
        base in 0u64..1_000,
        repeats in 2usize..20,
    ) {
        let cfg = CacheConfig { bytes: 8 * 1024, ways: 4, line_bytes: 128 };
        let mut cache = Cache::new(cfg, true);
        // Two lines mapping to different sets: always within associativity.
        let lines = [base, base + 1];
        for l in lines {
            cache.access(l, false);
        }
        for _ in 0..repeats {
            for l in lines {
                prop_assert_eq!(cache.access(l, false), CacheOutcome::Hit);
            }
        }
    }

    /// Every DRAM request eventually completes, exactly once.
    #[test]
    fn dram_completes_every_request_once(
        addrs in proptest::collection::vec(0u64..100_000, 1..100),
    ) {
        let mut ch = DramChannel::new(DramConfig::default());
        for (i, &a) in addrs.iter().enumerate() {
            ch.push(DramRequest { line_addr: a, token: i as u64, arrived: 0 });
        }
        let mut done = std::collections::HashSet::new();
        let mut now = 0;
        while !ch.is_idle() && now < 1_000_000 {
            for t in ch.tick(now) {
                prop_assert!(done.insert(t), "token {t} completed twice");
            }
            now += 1;
        }
        prop_assert_eq!(done.len(), addrs.len());
    }

    /// Kernel generation is a pure function of (profile, seed).
    #[test]
    fn kernel_generation_is_pure(
        bench_idx in 0usize..12,
        seed in any::<u64>(),
    ) {
        let cfg = GpuConfig::default();
        let profile = &all_benchmarks()[bench_idx];
        let a = build_kernel(profile, &cfg, seed);
        let b = build_kernel(profile, &cfg, seed);
        prop_assert_eq!(a, b);
    }

    /// The SM never issues more real instructions over a window than the
    /// commanded issue width allows (the DIWS down-counter contract).
    #[test]
    fn issue_width_budget_is_respected(
        width_tenths in 0u32..=20,
        bench_idx in 0usize..12,
    ) {
        let width = f64::from(width_tenths) / 10.0;
        let cfg = GpuConfig::default();
        let mut kernel = build_kernel(&all_benchmarks()[bench_idx], &cfg, 3);
        kernel.warps_per_sm = 8;
        kernel.iterations = 50;
        let mut gpu = Gpu::new(&cfg, &kernel, SchedulerKind::Gto);
        for sm in 0..cfg.n_sms {
            gpu.set_sm_control(sm, SmControl { issue_width: width, ..SmControl::default() });
        }
        // Let the control take effect, then count issues over windows.
        for _ in 0..20 {
            gpu.tick();
        }
        let window = 10u64;
        let budget = (width * window as f64).round() as u32 + 2; // +2: window phase slack
        let mut in_window = vec![0u32; cfg.n_sms];
        for step in 0..200u64 {
            let e = gpu.tick();
            for (sm, s) in e.per_sm.iter().enumerate() {
                in_window[sm] += s.issued_total();
            }
            if (step + 1) % window == 0 {
                for (sm, count) in in_window.iter_mut().enumerate() {
                    prop_assert!(
                        *count <= budget,
                        "SM {sm} issued {count} > budget {budget} at width {width}"
                    );
                    *count = 0;
                }
            }
        }
    }
}

#[test]
fn zero_issue_width_freezes_progress() {
    let cfg = GpuConfig::default();
    let mut kernel = build_kernel(&all_benchmarks()[2], &cfg, 3);
    kernel.warps_per_sm = 4;
    kernel.iterations = 5;
    let mut gpu = Gpu::new(&cfg, &kernel, SchedulerKind::Gto);
    for sm in 0..cfg.n_sms {
        gpu.set_sm_control(
            sm,
            SmControl {
                issue_width: 0.0,
                ..SmControl::default()
            },
        );
    }
    // A couple of cycles may drain in-flight state, but instruction count
    // must stop growing once the zero width takes effect.
    for _ in 0..30 {
        gpu.tick();
    }
    let before = gpu.total_instructions();
    for _ in 0..500 {
        gpu.tick();
    }
    assert_eq!(gpu.total_instructions(), before);
    assert!(!gpu.done());
}
