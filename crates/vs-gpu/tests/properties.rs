//! Randomized-but-deterministic tests for the GPU timing simulator's
//! building blocks. Each case is driven by a seeded [`vs_num::Rng`], so
//! failures reproduce exactly without an external property-test harness.

use vs_gpu::{
    all_benchmarks, build_kernel, Cache, CacheConfig, CacheOutcome, DramChannel, DramConfig,
    DramRequest, Gpu, GpuConfig, SchedulerKind, SmControl,
};
use vs_num::Rng;

/// Runs `f` once per deterministic case, handing it a seeded RNG.
fn for_each_case(cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::seed_from_u64(0x6b05 ^ case.wrapping_mul(0x9e3779b97f4a7c15));
        f(&mut rng);
    }
}

/// A line is always resident immediately after a read access (allocate
/// on read), and the number of resident lines never exceeds capacity.
#[test]
fn cache_allocates_reads_and_respects_capacity() {
    for_each_case(32, |rng| {
        let n = rng.index(1, 400);
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(4_096)).collect();
        let cfg = CacheConfig {
            bytes: 8 * 1024,
            ways: 4,
            line_bytes: 128,
        };
        let capacity_lines = cfg.bytes / cfg.line_bytes;
        let mut cache = Cache::new(cfg, true);
        let mut inserted = std::collections::HashSet::new();
        for &a in &addrs {
            cache.access(a, false);
            assert!(cache.probe(a), "line {a} must be resident after read");
            inserted.insert(a);
        }
        let resident = inserted.iter().filter(|a| cache.probe(**a)).count();
        assert!(resident <= capacity_lines, "{resident} > {capacity_lines}");
    });
}

/// Re-accessing the same line is always a hit until capacity pressure
/// evicts it; with a working set within one set's ways it never evicts.
#[test]
fn cache_small_working_set_always_hits() {
    for_each_case(32, |rng| {
        let base = rng.below(1_000);
        let repeats = rng.index(2, 20);
        let cfg = CacheConfig {
            bytes: 8 * 1024,
            ways: 4,
            line_bytes: 128,
        };
        let mut cache = Cache::new(cfg, true);
        // Two lines mapping to different sets: always within associativity.
        let lines = [base, base + 1];
        for l in lines {
            cache.access(l, false);
        }
        for _ in 0..repeats {
            for l in lines {
                assert_eq!(cache.access(l, false), CacheOutcome::Hit);
            }
        }
    });
}

/// Every DRAM request eventually completes, exactly once.
#[test]
fn dram_completes_every_request_once() {
    for_each_case(32, |rng| {
        let n = rng.index(1, 100);
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(100_000)).collect();
        let mut ch = DramChannel::new(DramConfig::default());
        for (i, &a) in addrs.iter().enumerate() {
            ch.push(DramRequest {
                line_addr: a,
                token: i as u64,
                arrived: 0,
            });
        }
        let mut done = std::collections::HashSet::new();
        let mut now = 0;
        while !ch.is_idle() && now < 1_000_000 {
            for t in ch.tick(now) {
                assert!(done.insert(t), "token {t} completed twice");
            }
            now += 1;
        }
        assert_eq!(done.len(), addrs.len());
    });
}

/// Kernel generation is a pure function of (profile, seed).
#[test]
fn kernel_generation_is_pure() {
    for_each_case(32, |rng| {
        let bench_idx = rng.index(0, 12);
        let seed = rng.next_u64();
        let cfg = GpuConfig::default();
        let profile = &all_benchmarks()[bench_idx];
        let a = build_kernel(profile, &cfg, seed);
        let b = build_kernel(profile, &cfg, seed);
        assert_eq!(a, b);
    });
}

/// The SM never issues more real instructions over a window than the
/// commanded issue width allows (the DIWS down-counter contract).
#[test]
fn issue_width_budget_is_respected() {
    for_each_case(16, |rng| {
        let width = rng.range_u64(0, 20) as f64 / 10.0;
        let bench_idx = rng.index(0, 12);
        let cfg = GpuConfig::default();
        let mut kernel = build_kernel(&all_benchmarks()[bench_idx], &cfg, 3);
        kernel.warps_per_sm = 8;
        kernel.iterations = 50;
        let mut gpu = Gpu::new(&cfg, &kernel, SchedulerKind::Gto);
        for sm in 0..cfg.n_sms {
            gpu.set_sm_control(
                sm,
                SmControl {
                    issue_width: width,
                    ..SmControl::default()
                },
            );
        }
        // Let the control take effect, then count issues over windows.
        for _ in 0..20 {
            gpu.tick();
        }
        let window = 10u64;
        let budget = (width * window as f64).round() as u32 + 2; // +2: window phase slack
        let mut in_window = vec![0u32; cfg.n_sms];
        for step in 0..200u64 {
            let e = gpu.tick();
            for (sm, s) in e.per_sm.iter().enumerate() {
                in_window[sm] += s.issued_total();
            }
            if (step + 1) % window == 0 {
                for (sm, count) in in_window.iter_mut().enumerate() {
                    assert!(
                        *count <= budget,
                        "SM {sm} issued {count} > budget {budget} at width {width}"
                    );
                    *count = 0;
                }
            }
        }
    });
}

#[test]
fn zero_issue_width_freezes_progress() {
    let cfg = GpuConfig::default();
    let mut kernel = build_kernel(&all_benchmarks()[2], &cfg, 3);
    kernel.warps_per_sm = 4;
    kernel.iterations = 5;
    let mut gpu = Gpu::new(&cfg, &kernel, SchedulerKind::Gto);
    for sm in 0..cfg.n_sms {
        gpu.set_sm_control(
            sm,
            SmControl {
                issue_width: 0.0,
                ..SmControl::default()
            },
        );
    }
    // A couple of cycles may drain in-flight state, but instruction count
    // must stop growing once the zero width takes effect.
    for _ in 0..30 {
        gpu.tick();
    }
    let before = gpu.total_instructions();
    for _ in 0..500 {
        gpu.tick();
    }
    assert_eq!(gpu.total_instructions(), before);
    assert!(!gpu.done());
}
