//! Set-associative cache with true-LRU replacement, used for both the
//! per-SM L1 data caches and the banked shared L2.


/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn n_sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes > 0);
        assert!(self.ways > 0);
        let lines = self.bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "capacity must be a whole number of sets"
        );
        lines / self.ways
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent; it has been allocated (reads) or bypassed (writes with
    /// `allocate_on_write = false`). `writeback` reports whether a dirty
    /// victim was evicted.
    Miss {
        /// A dirty line was evicted and must be written downstream.
        writeback: bool,
    },
}

/// Running hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, true-LRU cache model (tags only; no data storage).
///
/// Lines are stored in one flat array (`ways` consecutive entries per set)
/// so a lookup touches a single contiguous slice.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    n_sets: usize,
    clock: u64,
    allocate_on_write: bool,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache. `allocate_on_write` selects write-allocate (L2
    /// style) or write-no-allocate (L1 write-through style).
    pub fn new(config: CacheConfig, allocate_on_write: bool) -> Self {
        let n_sets = config.n_sets();
        Cache {
            config,
            lines: vec![Line::default(); config.ways * n_sets],
            n_sets,
            clock: 0,
            allocate_on_write,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses the line containing `line_addr` (already line-granular).
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        let n_sets = self.n_sets as u64;
        let set_idx = (line_addr % n_sets) as usize;
        let tag = line_addr / n_sets;
        let ways = self.config.ways;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_used = self.clock;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }
        self.stats.misses += 1;

        if is_write && !self.allocate_on_write {
            // Write-through no-allocate: pass downstream without caching.
            return CacheOutcome::Miss { writeback: false };
        }

        // Allocate into the LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_used } else { 0 })
            .expect("ways >= 1");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_used: self.clock,
        };
        CacheOutcome::Miss { writeback }
    }

    /// True when the line is currently resident (no LRU update).
    pub fn probe(&self, line_addr: u64) -> bool {
        let n_sets = self.n_sets as u64;
        let set_idx = (line_addr % n_sets) as usize;
        let tag = line_addr / n_sets;
        let ways = self.config.ways;
        self.lines[set_idx * ways..(set_idx + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 128 B lines = 1 KiB.
        Cache::new(
            CacheConfig {
                bytes: 1024,
                ways: 2,
                line_bytes: 128,
            },
            true,
        )
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().n_sets(), 4);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert_eq!(c.access(10, false), CacheOutcome::Miss { writeback: false });
        assert_eq!(c.access(10, false), CacheOutcome::Hit);
        assert!(c.probe(10));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Lines 0, 4, 8 map to set 0 (4 sets). Two ways: 8 evicts 0.
        c.access(0, false);
        c.access(4, false);
        c.access(0, false); // 0 is now MRU
        c.access(8, false); // evicts 4
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true); // dirty
        c.access(4, false);
        let out = c.access(8, false); // evicts dirty 0
        assert_eq!(out, CacheOutcome::Miss { writeback: true });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_no_allocate_bypasses() {
        let mut c = Cache::new(
            CacheConfig {
                bytes: 1024,
                ways: 2,
                line_bytes: 128,
            },
            false,
        );
        assert_eq!(c.access(3, true), CacheOutcome::Miss { writeback: false });
        assert!(!c.probe(3), "write must not allocate");
        // But a read allocates.
        c.access(3, false);
        assert!(c.probe(3));
    }

    #[test]
    fn hit_rate_accumulates() {
        let mut c = small();
        c.access(1, false);
        c.access(1, false);
        c.access(1, false);
        c.access(2, false);
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
