//! GDDR-style DRAM channel with an FR-FCFS (first-ready, first-come
//! first-served) scheduler — the memory-controller policy from Table I.
//!
//! Each channel owns a set of banks with open-row state. Every cycle the
//! scheduler starts at most one request: it prefers the oldest *row-hit*
//! request whose bank is free (first-ready), falling back to the oldest
//! request overall (FCFS). Timing uses tRCD/tRP/tCAS plus a shared data-bus
//! burst occupancy.

use std::collections::VecDeque;

/// DRAM timing/geometry parameters (in GPU clock cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per channel.
    pub banks: usize,
    /// Row-activate latency.
    pub t_rcd: u32,
    /// Precharge latency.
    pub t_rp: u32,
    /// Column-access latency.
    pub t_cas: u32,
    /// Data-bus occupancy per burst.
    pub t_burst: u32,
    /// Cache lines per DRAM row (row-buffer size / line size).
    pub lines_per_row: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            t_rcd: 12,
            t_rp: 12,
            t_cas: 12,
            t_burst: 4,
            lines_per_row: 16,
        }
    }
}

/// A queued DRAM request, identified by an opaque token the owner uses to
/// match completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Line-granular address.
    pub line_addr: u64,
    /// Owner-assigned completion token.
    pub token: u64,
    /// Cycle the request entered the queue.
    pub arrived: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    token: u64,
    done_at: u64,
}

/// Running statistics for a channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced.
    pub serviced: u64,
    /// Row-buffer hits among serviced requests.
    pub row_hits: u64,
    /// Sum of queueing+service latencies (cycles) for serviced requests.
    pub total_latency: u64,
}

/// One DRAM channel with FR-FCFS scheduling.
#[derive(Debug, Clone)]
pub struct DramChannel {
    config: DramConfig,
    queue: VecDeque<DramRequest>,
    banks: Vec<Bank>,
    bus_free_at: u64,
    in_flight: Vec<InFlight>,
    stats: DramStats,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        DramChannel {
            config,
            queue: VecDeque::new(),
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0,
                };
                config.banks
            ],
            bus_free_at: 0,
            in_flight: Vec::new(),
            stats: DramStats::default(),
        }
    }

    /// Queue depth (requests not yet started).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn bank_of(&self, line_addr: u64) -> usize {
        // Interleave rows across banks so streaming accesses exploit bank
        // parallelism.
        ((line_addr / self.config.lines_per_row) % self.config.banks as u64) as usize
    }

    fn row_of(&self, line_addr: u64) -> u64 {
        line_addr / (self.config.lines_per_row * self.config.banks as u64)
    }

    /// Enqueues a request.
    pub fn push(&mut self, req: DramRequest) {
        self.queue.push_back(req);
    }

    /// Advances one cycle; returns the tokens of requests whose data
    /// completed this cycle.
    pub fn tick(&mut self, now: u64) -> Vec<u64> {
        // Collect completions.
        let mut done = Vec::new();
        self.in_flight.retain(|f| {
            if f.done_at <= now {
                done.push(f.token);
                false
            } else {
                true
            }
        });

        // FR-FCFS: oldest row-hit with a free bank, else oldest with a free
        // bank.
        let mut pick: Option<usize> = None;
        for (i, req) in self.queue.iter().enumerate() {
            let bank = self.bank_of(req.line_addr);
            if self.banks[bank].busy_until > now {
                continue;
            }
            let row_hit = self.banks[bank].open_row == Some(self.row_of(req.line_addr));
            if row_hit {
                pick = Some(i);
                break; // oldest row-hit wins immediately
            }
            if pick.is_none() {
                pick = Some(i);
            }
        }

        if let Some(i) = pick {
            let req = self.queue.remove(i).expect("index valid");
            let bank_idx = self.bank_of(req.line_addr);
            let row = self.row_of(req.line_addr);
            let cfg = self.config;
            let bank = &mut self.banks[bank_idx];
            let access_cycles = match bank.open_row {
                Some(r) if r == row => {
                    self.stats.row_hits += 1;
                    cfg.t_cas
                }
                Some(_) => cfg.t_rp + cfg.t_rcd + cfg.t_cas,
                None => cfg.t_rcd + cfg.t_cas,
            };
            bank.open_row = Some(row);
            let data_start = (now + u64::from(access_cycles)).max(self.bus_free_at);
            let done_at = data_start + u64::from(cfg.t_burst);
            bank.busy_until = done_at;
            self.bus_free_at = done_at;
            self.in_flight.push(InFlight {
                token: req.token,
                done_at,
            });
            self.stats.serviced += 1;
            self.stats.total_latency += done_at - req.arrived;
        }

        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(ch: &mut DramChannel, mut now: u64, limit: u64) -> Vec<(u64, u64)> {
        let mut completions = Vec::new();
        while !ch.is_idle() && now < limit {
            for t in ch.tick(now) {
                completions.push((t, now));
            }
            now += 1;
        }
        completions
    }

    #[test]
    fn single_request_timing() {
        let mut ch = DramChannel::new(DramConfig::default());
        ch.push(DramRequest {
            line_addr: 0,
            token: 7,
            arrived: 0,
        });
        let done = run_until_done(&mut ch, 0, 1_000);
        assert_eq!(done.len(), 1);
        let (tok, at) = done[0];
        assert_eq!(tok, 7);
        // Closed row: tRCD + tCAS + burst = 12 + 12 + 4 = 28, started at
        // cycle 0, completion observed on the tick after done_at.
        assert!((28..=30).contains(&at), "completed at {at}");
    }

    #[test]
    fn row_hits_are_faster() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg);
        // Same row, sequential lines.
        ch.push(DramRequest { line_addr: 0, token: 1, arrived: 0 });
        ch.push(DramRequest { line_addr: 1, token: 2, arrived: 0 });
        let done = run_until_done(&mut ch, 0, 1_000);
        assert_eq!(ch.stats().row_hits, 1);
        let t2 = done.iter().find(|(t, _)| *t == 2).unwrap().1;
        let t1 = done.iter().find(|(t, _)| *t == 1).unwrap().1;
        // Second access pays only tCAS + burst after the first frees the bus.
        assert!(t2 > t1);
        assert!(t2 - t1 <= u64::from(cfg.t_cas + cfg.t_burst) + 2);
    }

    #[test]
    fn fr_fcfs_prefers_row_hit() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg);
        // Open a row in bank 0 (addresses 0..16 are bank 0 row 0).
        ch.push(DramRequest { line_addr: 0, token: 1, arrived: 0 });
        let mut now = 0;
        while ch.stats().serviced == 0 {
            ch.tick(now);
            now += 1;
        }
        // Wait for the bank to go idle again.
        while !ch.is_idle() {
            ch.tick(now);
            now += 1;
        }
        // Queue a row-conflict (bank 0, different row) first, then a row-hit.
        let other_row = cfg.lines_per_row * cfg.banks as u64; // bank 0, row 1
        ch.push(DramRequest { line_addr: other_row, token: 10, arrived: now });
        ch.push(DramRequest { line_addr: 1, token: 11, arrived: now });
        let done = run_until_done(&mut ch, now, now + 1_000);
        let hit_at = done.iter().find(|(t, _)| *t == 11).unwrap().1;
        let conflict_at = done.iter().find(|(t, _)| *t == 10).unwrap().1;
        assert!(hit_at < conflict_at, "row hit must be scheduled first");
    }

    #[test]
    fn bank_parallelism_overlaps_access() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg);
        // Two requests to different banks issue back to back; total time is
        // far less than 2x the serial latency.
        ch.push(DramRequest { line_addr: 0, token: 1, arrived: 0 });
        ch.push(DramRequest {
            line_addr: cfg.lines_per_row, // next bank
            token: 2,
            arrived: 0,
        });
        let done = run_until_done(&mut ch, 0, 1_000);
        let last = done.iter().map(|(_, at)| *at).max().unwrap();
        assert!(last < 2 * 28, "banks should overlap: finished at {last}");
    }

    #[test]
    fn average_latency_grows_under_load() {
        let cfg = DramConfig::default();
        let mut light = DramChannel::new(cfg);
        light.push(DramRequest { line_addr: 0, token: 0, arrived: 0 });
        run_until_done(&mut light, 0, 10_000);

        let mut heavy = DramChannel::new(cfg);
        for i in 0..64 {
            heavy.push(DramRequest {
                line_addr: i * 1000, // scattered: mostly row misses
                token: i,
                arrived: 0,
            });
        }
        run_until_done(&mut heavy, 0, 100_000);
        let l_avg = light.stats().total_latency as f64 / light.stats().serviced as f64;
        let h_avg = heavy.stats().total_latency as f64 / heavy.stats().serviced as f64;
        assert!(h_avg > 2.0 * l_avg, "queueing must raise latency: {l_avg} vs {h_avg}");
    }
}
