//! # vs-gpu — cycle-level GPU timing simulator
//!
//! The architecture-level substrate of the voltage-stacked-GPU reproduction
//! (MICRO 2018): a Fermi-class manycore simulator standing in for
//! GPGPU-Sim 3.1.1. It models the paper's Table I configuration — 16 SMs at
//! 700 MHz, 48 resident warps each, dual issue under a GTO scheduler, SP /
//! SFU / LSU pipelines, per-SM L1s, a banked shared L2, and FR-FCFS DRAM
//! channels — and executes deterministic synthetic kernels whose statistics
//! mirror the twelve Rodinia / CUDA-SDK benchmarks the paper evaluates (see
//! DESIGN.md for the substitution argument).
//!
//! The simulator exposes exactly the hooks the cross-layer voltage-stacking
//! scheme needs:
//!
//! * per-cycle, per-SM microarchitectural event counts
//!   ([`SmCycleStats`]) that the power model converts to watts;
//! * per-SM control inputs ([`SmControl`]): fractional issue width (DIWS),
//!   fake-instruction rate (FII), DFS frequency scaling, whole-SM gating,
//!   and execution-unit power gating.
//!
//! # Examples
//!
//! ```
//! use vs_gpu::{Gpu, GpuConfig, SchedulerKind, benchmark, build_kernel};
//!
//! let config = GpuConfig::default();
//! let profile = benchmark("hotspot").expect("known benchmark");
//! let kernel = build_kernel(&profile, &config, 42);
//! let mut gpu = Gpu::new(&config, &kernel, SchedulerKind::Gto);
//! let events = gpu.tick();
//! assert_eq!(events.per_sm.len(), config.n_sms);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod dram;
mod gpu;
mod isa;
mod mem;
mod sm;
mod workload;

pub use cache::{Cache, CacheConfig, CacheOutcome, CacheStats};
pub use config::GpuConfig;
pub use dram::{DramChannel, DramConfig, DramRequest, DramStats};
pub use gpu::{Gpu, GpuCycleEvents};
pub use isa::{AccessPattern, ExecUnit, Instruction, MemSpace, Opcode, Reg, SfuOp};
pub use mem::{MemRequest, MemResponse, MemStats, MemorySystem, ReqKind};
pub use sm::{SchedulerKind, Sm, SmControl, SmCycleStats, SmStats, WorkPool};
pub use workload::{all_benchmarks, benchmark, build_kernel, Kernel, WorkloadProfile};
