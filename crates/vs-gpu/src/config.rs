//! GPU system configuration (paper Table I): an NVIDIA-Fermi-class manycore
//! with 16 streaming multiprocessors in a 4x4 voltage-stack arrangement.


/// Static configuration of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (16).
    pub n_sms: usize,
    /// SM clock frequency in hertz (700 MHz).
    pub clock_hz: f64,
    /// Maximum resident threads per SM (1536).
    pub threads_per_sm: usize,
    /// Threads per warp (32).
    pub threads_per_warp: usize,
    /// Maximum issue width in warps per cycle (2).
    pub issue_width: u32,
    /// Warps per cooperative thread array (barrier scope).
    pub warps_per_cta: usize,
    /// Shader (SP) cores per SM (32, organized as two 16-wide blocks).
    pub sp_lanes: usize,
    /// Special-function units per SM (4).
    pub sfu_lanes: usize,
    /// Load/store units per SM (16).
    pub lsu_lanes: usize,
    /// Register file size per SM in bytes (128 KB).
    pub register_file_bytes: usize,
    /// Shared memory per SM in bytes (48 KB).
    pub shared_mem_bytes: usize,
    /// L1 data cache per SM in bytes (16 KB with the 48 KB-shared split).
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Unified L2 size in bytes (768 KB).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Cache line size in bytes (128).
    pub line_bytes: usize,
    /// Number of memory channels / L2 partitions (6).
    pub mem_channels: usize,
    /// DRAM banks per channel (8).
    pub dram_banks: usize,
    /// Peak memory bandwidth in bytes/second (179.2 GB/s), used for
    /// reporting only; the timing model enforces it implicitly.
    pub mem_bandwidth_bps: f64,
    /// SP-instruction result latency, cycles.
    pub sp_latency: u32,
    /// SFU-instruction result latency, cycles.
    pub sfu_latency: u32,
    /// Shared-memory access latency, cycles.
    pub shared_latency: u32,
    /// L1 hit latency, cycles.
    pub l1_hit_latency: u32,
    /// Interconnect one-way latency, cycles.
    pub icnt_latency: u32,
    /// L2 hit latency (at the partition), cycles.
    pub l2_hit_latency: u32,
    /// DRAM row-activate (tRCD) in cycles.
    pub dram_t_rcd: u32,
    /// DRAM precharge (tRP) in cycles.
    pub dram_t_rp: u32,
    /// DRAM column access (tCAS) in cycles.
    pub dram_t_cas: u32,
    /// DRAM data burst occupancy per request, cycles.
    pub dram_t_burst: u32,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            n_sms: 16,
            clock_hz: 700e6,
            threads_per_sm: 1536,
            threads_per_warp: 32,
            issue_width: 2,
            warps_per_cta: 8,
            sp_lanes: 32,
            sfu_lanes: 4,
            lsu_lanes: 16,
            register_file_bytes: 128 * 1024,
            shared_mem_bytes: 48 * 1024,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l2_bytes: 768 * 1024,
            l2_ways: 8,
            line_bytes: 128,
            mem_channels: 6,
            dram_banks: 8,
            mem_bandwidth_bps: 179.2e9,
            sp_latency: 10,
            sfu_latency: 20,
            shared_latency: 24,
            l1_hit_latency: 28,
            icnt_latency: 8,
            l2_hit_latency: 24,
            dram_t_rcd: 12,
            dram_t_rp: 12,
            dram_t_cas: 12,
            dram_t_burst: 4,
        }
    }
}

impl GpuConfig {
    /// Maximum resident warps per SM (48 for the default configuration).
    pub fn warps_per_sm(&self) -> usize {
        self.threads_per_sm / self.threads_per_warp
    }

    /// GPU clock period in seconds.
    pub fn clock_period_s(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if a field is zero where it must not be, or warp/thread counts
    /// do not divide evenly.
    pub fn validate(&self) {
        assert!(self.n_sms > 0 && self.clock_hz > 0.0);
        assert!(self.threads_per_warp > 0);
        assert_eq!(
            self.threads_per_sm % self.threads_per_warp,
            0,
            "threads_per_sm must be a multiple of the warp size"
        );
        assert!(self.warps_per_cta > 0 && self.warps_per_cta <= self.warps_per_sm());
        assert!(self.issue_width >= 1);
        assert!(self.line_bytes.is_power_of_two());
        assert!(self.mem_channels > 0 && self.dram_banks > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = GpuConfig::default();
        c.validate();
        assert_eq!(c.n_sms, 16);
        assert_eq!(c.warps_per_sm(), 48);
        assert_eq!(c.threads_per_sm, 1536);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.mem_channels, 6);
        assert!((c.clock_hz - 700e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn validate_rejects_ragged_warps() {
        let c = GpuConfig {
            threads_per_sm: 100,
            ..GpuConfig::default()
        };
        c.validate();
    }
}
