//! Synthetic workload generator standing in for the paper's Rodinia 2.0 and
//! NVIDIA CUDA SDK benchmarks.
//!
//! The co-simulation consumes *per-SM per-cycle power traces*; what must be
//! faithful is their statistical structure — average issue rate (the paper
//! reports 0.8–1.8 warps/cycle), memory intensity, phase behaviour, and
//! inter-SM imbalance (Fig. 17: ≥50 % of cycles below 10 % normalized
//! imbalance) — not the kernels' arithmetic results. Each of the twelve
//! benchmarks is therefore described by a [`WorkloadProfile`] and expanded
//! into a deterministic instruction stream by [`build_kernel`].

use vs_num::Rng;

use crate::config::GpuConfig;
use crate::isa::{AccessPattern, Instruction, Opcode, Reg, SfuOp};

/// Statistical description of a benchmark's kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (matches the paper's figures).
    pub name: String,
    /// Instructions per kernel-body compute block.
    pub body_compute: usize,
    /// Global loads per body.
    pub body_loads: usize,
    /// Global stores per body.
    pub body_stores: usize,
    /// Shared-memory accesses per body.
    pub body_shared: usize,
    /// SFU instructions per body.
    pub body_sfu: usize,
    /// Atomic operations per body.
    pub body_atomics: usize,
    /// Fraction of compute that is FFMA (vs simpler ALU).
    pub ffma_frac: f64,
    /// Probability that an instruction depends on one of the last two
    /// results (longer chains = lower ILP = lower issue rate).
    pub dep_chain: f64,
    /// Average distinct cache lines per global warp access (1 = coalesced,
    /// 32 = fully diverged).
    pub coalescing_lines: u8,
    /// True when accesses hash randomly over the working set (graph codes).
    pub random_access: bool,
    /// Barrier at the end of each body?
    pub barrier: bool,
    /// Resident warps per SM (occupancy).
    pub warps_per_sm: usize,
    /// Kernel-body iterations per warp.
    pub iterations: u32,
    /// Inter-SM work imbalance: fractional spread of per-SM iteration counts
    /// (0 = perfectly uniform; the paper's most imbalanced benchmark is
    /// `backprop`, its most uniform `heartwall`).
    pub sm_imbalance: f64,
    /// Number of alternating compute/memory phases per body (>=1); higher
    /// values give the low-frequency power swings of `fastwalsh` and
    /// `pathfinder`.
    pub phases: usize,
}

/// A fully-expanded kernel ready to run on the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Benchmark name.
    pub name: String,
    /// The kernel body executed `iterations` times by every warp.
    pub body: Vec<Instruction>,
    /// Warps resident per SM.
    pub warps_per_sm: usize,
    /// Baseline iterations per warp.
    pub iterations: u32,
    /// Per-SM iteration multiplier realizing inter-SM imbalance
    /// (length = number of SMs).
    pub sm_iteration_scale: Vec<f64>,
}

impl Kernel {
    /// Iterations a warp on `sm` runs.
    pub fn iterations_for_sm(&self, sm: usize) -> u32 {
        let scale = self.sm_iteration_scale.get(sm).copied().unwrap_or(1.0);
        ((f64::from(self.iterations) * scale).round() as u32).max(1)
    }
}

/// The twelve benchmarks evaluated in the paper: six from Rodinia 2.0 and
/// six from the NVIDIA CUDA SDK.
pub fn all_benchmarks() -> Vec<WorkloadProfile> {
    vec![
        // ---- Rodinia 2.0 ----
        WorkloadProfile {
            // Back-propagation: dense FFMA layers with shared-memory staging
            // and barriers; the paper's most SM-imbalanced benchmark.
            name: "backprop".into(),
            body_compute: 48,
            body_loads: 6,
            body_stores: 2,
            body_shared: 8,
            body_sfu: 2,
            body_atomics: 0,
            ffma_frac: 0.8,
            dep_chain: 0.35,
            coalescing_lines: 2,
            random_access: false,
            barrier: true,
            warps_per_sm: 32,
            iterations: 40,
            sm_imbalance: 0.35,
            phases: 2,
        },
        WorkloadProfile {
            // Breadth-first search: pointer chasing, little compute, heavy
            // divergence.
            name: "bfs".into(),
            body_compute: 10,
            body_loads: 10,
            body_stores: 3,
            body_shared: 0,
            body_sfu: 0,
            body_atomics: 1,
            ffma_frac: 0.1,
            dep_chain: 0.6,
            coalescing_lines: 16,
            random_access: true,
            barrier: false,
            warps_per_sm: 40,
            iterations: 30,
            sm_imbalance: 0.25,
            phases: 1,
        },
        WorkloadProfile {
            // Heartwall tracking: the paper's most uniform benchmark —
            // long, regular FFMA streams.
            name: "heartwall".into(),
            body_compute: 64,
            body_loads: 4,
            body_stores: 1,
            body_shared: 4,
            body_sfu: 4,
            body_atomics: 0,
            ffma_frac: 0.75,
            dep_chain: 0.25,
            coalescing_lines: 1,
            random_access: false,
            barrier: false,
            warps_per_sm: 36,
            iterations: 40,
            sm_imbalance: 0.03,
            phases: 1,
        },
        WorkloadProfile {
            // Hotspot thermal stencil: coalesced neighbour loads + FFMA +
            // per-tile barriers.
            name: "hotspot".into(),
            body_compute: 36,
            body_loads: 6,
            body_stores: 2,
            body_shared: 6,
            body_sfu: 0,
            body_atomics: 0,
            ffma_frac: 0.7,
            dep_chain: 0.3,
            coalescing_lines: 2,
            random_access: false,
            barrier: true,
            warps_per_sm: 32,
            iterations: 36,
            sm_imbalance: 0.12,
            phases: 1,
        },
        WorkloadProfile {
            // Pathfinder dynamic programming: short rows with barriers and
            // shared memory; strong phase transitions (a Fig. 11 outlier).
            name: "pathfinder".into(),
            body_compute: 20,
            body_loads: 4,
            body_stores: 2,
            body_shared: 10,
            body_sfu: 0,
            body_atomics: 0,
            ffma_frac: 0.3,
            dep_chain: 0.5,
            coalescing_lines: 2,
            random_access: false,
            barrier: true,
            warps_per_sm: 24,
            iterations: 48,
            sm_imbalance: 0.18,
            phases: 4,
        },
        WorkloadProfile {
            // SRAD image despeckling: FFMA plus exponentials on the SFU.
            name: "srad".into(),
            body_compute: 40,
            body_loads: 6,
            body_stores: 2,
            body_shared: 0,
            body_sfu: 8,
            body_atomics: 0,
            ffma_frac: 0.65,
            dep_chain: 0.3,
            coalescing_lines: 2,
            random_access: false,
            barrier: false,
            warps_per_sm: 36,
            iterations: 36,
            sm_imbalance: 0.10,
            phases: 1,
        },
        // ---- NVIDIA CUDA SDK ----
        WorkloadProfile {
            // Black-Scholes option pricing: streaming loads, FFMA and
            // transcendental-heavy.
            name: "blackscholes".into(),
            body_compute: 44,
            body_loads: 5,
            body_stores: 2,
            body_shared: 0,
            body_sfu: 12,
            body_atomics: 0,
            ffma_frac: 0.7,
            dep_chain: 0.3,
            coalescing_lines: 1,
            random_access: false,
            barrier: false,
            warps_per_sm: 40,
            iterations: 36,
            sm_imbalance: 0.06,
            phases: 1,
        },
        WorkloadProfile {
            // Scalar product: streaming FFMA with shared-memory reduction
            // trees and barriers.
            name: "scalarprod".into(),
            body_compute: 32,
            body_loads: 8,
            body_stores: 1,
            body_shared: 6,
            body_sfu: 0,
            body_atomics: 0,
            ffma_frac: 0.8,
            dep_chain: 0.35,
            coalescing_lines: 1,
            random_access: false,
            barrier: true,
            warps_per_sm: 40,
            iterations: 40,
            sm_imbalance: 0.08,
            phases: 1,
        },
        WorkloadProfile {
            // Bitonic sorting network: shared-memory swaps with barriers and
            // stride phases.
            name: "sortingnet".into(),
            body_compute: 24,
            body_loads: 4,
            body_stores: 4,
            body_shared: 12,
            body_sfu: 0,
            body_atomics: 0,
            ffma_frac: 0.15,
            dep_chain: 0.45,
            coalescing_lines: 4,
            random_access: false,
            barrier: true,
            warps_per_sm: 32,
            iterations: 44,
            sm_imbalance: 0.10,
            phases: 3,
        },
        WorkloadProfile {
            // Face-detection style convolution: coalesced loads + FFMA with
            // shared staging.
            name: "simpleface".into(),
            body_compute: 40,
            body_loads: 6,
            body_stores: 2,
            body_shared: 8,
            body_sfu: 2,
            body_atomics: 0,
            ffma_frac: 0.7,
            dep_chain: 0.3,
            coalescing_lines: 2,
            random_access: false,
            barrier: true,
            warps_per_sm: 36,
            iterations: 36,
            sm_imbalance: 0.08,
            phases: 1,
        },
        WorkloadProfile {
            // Fast Walsh transform: butterfly phases alternating strided and
            // coalesced access (a Fig. 11 outlier).
            name: "fastwalsh".into(),
            body_compute: 24,
            body_loads: 8,
            body_stores: 8,
            body_shared: 8,
            body_sfu: 0,
            body_atomics: 0,
            ffma_frac: 0.4,
            dep_chain: 0.4,
            coalescing_lines: 8,
            random_access: false,
            barrier: true,
            warps_per_sm: 32,
            iterations: 40,
            sm_imbalance: 0.15,
            phases: 4,
        },
        WorkloadProfile {
            // Atomic-intensive microbenchmark: L2 atomics serialize warps (a
            // Fig. 11 / Fig. 17 outlier).
            name: "simpleatomic".into(),
            body_compute: 12,
            body_loads: 3,
            body_stores: 1,
            body_shared: 0,
            body_sfu: 0,
            body_atomics: 6,
            ffma_frac: 0.2,
            dep_chain: 0.5,
            coalescing_lines: 8,
            random_access: true,
            barrier: false,
            warps_per_sm: 32,
            iterations: 32,
            sm_imbalance: 0.22,
            phases: 1,
        },
    ]
}

/// Looks up one of the twelve benchmarks by name.
pub fn benchmark(name: &str) -> Option<WorkloadProfile> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// Expands a profile into a concrete, deterministic kernel for the given
/// GPU configuration. The same `(profile, seed)` pair always yields the same
/// kernel.
pub fn build_kernel(profile: &WorkloadProfile, config: &GpuConfig, seed: u64) -> Kernel {
    let mut rng = Rng::seed_from_u64(seed ^ hash_name(&profile.name));
    let mut body = Vec::new();
    let phases = profile.phases.max(1);

    // Registers cycle through the warp's architectural set; recent
    // destinations feed dependence chains.
    let mut next_reg = 0u8;
    let mut recent = [Reg(0), Reg(1)];
    let mut alloc = |recent: &mut [Reg; 2]| {
        let r = Reg(next_reg % Reg::COUNT as u8);
        next_reg = next_reg.wrapping_add(1);
        recent[1] = recent[0];
        recent[0] = r;
        r
    };

    let pattern = |rng: &mut Rng, profile: &WorkloadProfile| -> AccessPattern {
        let jitter = rng.range_u64(0, 1) as u8;
        let n = profile.coalescing_lines.saturating_add(jitter).clamp(1, 32);
        if profile.random_access {
            AccessPattern::Random { n_lines: n }
        } else if n <= 2 {
            AccessPattern::Coalesced { n_lines: n }
        } else {
            AccessPattern::Strided {
                n_lines: n,
                stride_lines: 8,
            }
        }
    };

    for _phase in 0..phases {
        let loads = profile.body_loads.div_ceil(phases);
        let computes = profile.body_compute.div_ceil(phases);
        let shareds = profile.body_shared.div_ceil(phases);
        let sfus = profile.body_sfu.div_ceil(phases);
        let stores = profile.body_stores.div_ceil(phases);
        let atomics = profile.body_atomics.div_ceil(phases);

        // Memory-phase: loads first (they start long-latency misses early,
        // like a compiler would schedule them).
        for _ in 0..loads {
            let addr = recent[rng.index(0, 2)];
            let dst = alloc(&mut recent);
            body.push(Instruction::load_global(dst, addr, pattern(&mut rng, profile)));
        }
        for _ in 0..shareds {
            let addr = recent[rng.index(0, 2)];
            let dst = alloc(&mut recent);
            body.push(Instruction::load_shared(dst, addr));
        }
        // Compute phase with tunable dependence density.
        for i in 0..computes {
            let op = if rng.chance(profile.ffma_frac) {
                Opcode::Ffma
            } else if rng.chance(0.5) {
                Opcode::FAlu
            } else {
                Opcode::IAlu
            };
            let s0 = if rng.chance(profile.dep_chain) {
                recent[0]
            } else {
                Reg((i % Reg::COUNT) as u8)
            };
            let s1 = recent[1];
            let dst = alloc(&mut recent);
            body.push(Instruction::alu(op, dst, &[s0, s1, Reg(((i + 7) % Reg::COUNT) as u8)]));
        }
        for _ in 0..sfus {
            let s = recent[0];
            let dst = alloc(&mut recent);
            body.push(Instruction::alu(
                Opcode::Sfu(if rng.chance(0.5) {
                    SfuOp::Rcp
                } else {
                    SfuOp::Transcendental
                }),
                dst,
                &[s],
            ));
        }
        for _ in 0..atomics {
            let addr = recent[0];
            let dst = alloc(&mut recent);
            body.push(Instruction::atomic(dst, addr));
        }
        for _ in 0..stores {
            let data = recent[0];
            let addr = recent[1];
            body.push(Instruction::store_global(data, addr, pattern(&mut rng, profile)));
        }
        if profile.barrier {
            body.push(Instruction::barrier());
        }
    }
    body.push(Instruction::exit());

    // Deterministic inter-SM imbalance: a smooth spread of iteration scales
    // centred on 1.0 with half-range `sm_imbalance`.
    let n = config.n_sms;
    let sm_iteration_scale = (0..n)
        .map(|i| {
            let x = if n == 1 {
                0.0
            } else {
                (i as f64 / (n - 1) as f64) * 2.0 - 1.0
            };
            1.0 + profile.sm_imbalance * x
        })
        .collect();

    Kernel {
        name: profile.name.clone(),
        body,
        warps_per_sm: profile.warps_per_sm.min(config.warps_per_sm()),
        iterations: profile.iterations,
        sm_iteration_scale,
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks() {
        let b = all_benchmarks();
        assert_eq!(b.len(), 12);
        let names: Vec<_> = b.iter().map(|p| p.name.as_str()).collect();
        for expected in [
            "backprop",
            "bfs",
            "heartwall",
            "hotspot",
            "pathfinder",
            "srad",
            "blackscholes",
            "scalarprod",
            "sortingnet",
            "simpleface",
            "fastwalsh",
            "simpleatomic",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn kernel_generation_is_deterministic() {
        let cfg = GpuConfig::default();
        let p = benchmark("hotspot").unwrap();
        let k1 = build_kernel(&p, &cfg, 42);
        let k2 = build_kernel(&p, &cfg, 42);
        assert_eq!(k1, k2);
        let k3 = build_kernel(&p, &cfg, 43);
        assert_ne!(k1.body, k3.body);
    }

    #[test]
    fn kernel_body_ends_with_exit() {
        let cfg = GpuConfig::default();
        for p in all_benchmarks() {
            let k = build_kernel(&p, &cfg, 1);
            assert_eq!(k.body.last(), Some(&Instruction::exit()), "{}", p.name);
            assert!(k.body.len() > 10, "{} body too small", p.name);
            assert!(k.warps_per_sm <= cfg.warps_per_sm());
        }
    }

    #[test]
    fn imbalance_spreads_iterations() {
        let cfg = GpuConfig::default();
        let p = benchmark("backprop").unwrap();
        let k = build_kernel(&p, &cfg, 7);
        let lo = k.iterations_for_sm(0);
        let hi = k.iterations_for_sm(cfg.n_sms - 1);
        assert!(hi > lo, "backprop must be imbalanced: {lo} vs {hi}");
        let u = benchmark("heartwall").unwrap();
        let ku = build_kernel(&u, &cfg, 7);
        let spread = ku.iterations_for_sm(cfg.n_sms - 1) as i64 - ku.iterations_for_sm(0) as i64;
        assert!(spread.abs() <= 3, "heartwall nearly uniform, spread {spread}");
    }

    #[test]
    fn barrier_benchmarks_contain_barriers() {
        let cfg = GpuConfig::default();
        let p = benchmark("pathfinder").unwrap();
        let k = build_kernel(&p, &cfg, 1);
        assert!(k.body.iter().any(|i| i.opcode == Opcode::Bar));
        let q = benchmark("bfs").unwrap();
        let kq = build_kernel(&q, &cfg, 1);
        assert!(!kq.body.iter().any(|i| i.opcode == Opcode::Bar));
    }

    #[test]
    fn atomic_benchmark_contains_atomics() {
        let cfg = GpuConfig::default();
        let k = build_kernel(&benchmark("simpleatomic").unwrap(), &cfg, 1);
        let n_atoms = k.body.iter().filter(|i| i.opcode == Opcode::Atom).count();
        assert!(n_atoms >= 4);
    }
}
