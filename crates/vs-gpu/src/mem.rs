//! The shared memory subsystem: interconnect, banked L2, and DRAM channels.
//!
//! SMs submit line-granular requests after an L1 miss; the request crosses a
//! fixed-latency interconnect to the L2 partition owning the line (one
//! partition per memory channel, Table I), probes the partition's slice of
//! the L2, and on a miss queues in that channel's FR-FCFS DRAM controller.
//! Responses cross the interconnect back and wake the issuing warp.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::cache::{Cache, CacheConfig, CacheOutcome, CacheStats};
use crate::config::GpuConfig;
use crate::dram::{DramChannel, DramConfig, DramRequest, DramStats};

/// Kind of request submitted by an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// L1 read miss; produces a response.
    Load,
    /// Write-through store; fire-and-forget.
    Store,
    /// Atomic read-modify-write at the L2; serializes at the partition and
    /// produces a response.
    Atomic,
}

/// A line-granular memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuing SM.
    pub sm: usize,
    /// Issuing warp within the SM.
    pub warp: usize,
    /// Line address.
    pub line_addr: u64,
    /// Request kind.
    pub kind: ReqKind,
    /// SM-side token grouping the transactions of one instruction.
    pub instr_token: u64,
}

/// A response delivered back to an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Destination SM.
    pub sm: usize,
    /// Destination warp.
    pub warp: usize,
    /// The instruction token this transaction belonged to.
    pub instr_token: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Timed<T: Ord> {
    at: u64,
    payload: T,
}

/// Aggregate statistics of the memory subsystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// L2 demand accesses.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Requests sent to DRAM.
    pub dram_requests: u64,
    /// Atomic operations serviced.
    pub atomics: u64,
}

/// The shared L2 + DRAM subsystem.
#[derive(Debug)]
pub struct MemorySystem {
    icnt_latency: u64,
    l2_hit_latency: u64,
    n_channels: usize,
    to_l2: BinaryHeap<Reverse<Timed<u64>>>,
    to_l2_payload: HashMap<u64, MemRequest>,
    l2_queues: Vec<VecDeque<MemRequest>>,
    l2_banks: Vec<Cache>,
    l2_busy_until: Vec<u64>,
    dram: Vec<DramChannel>,
    dram_pending: HashMap<u64, MemRequest>,
    responses: BinaryHeap<Reverse<Timed<u64>>>,
    response_payload: HashMap<u64, MemResponse>,
    next_token: u64,
    stats: MemStats,
}

impl MemorySystem {
    /// Builds the subsystem from the GPU configuration.
    pub fn new(config: &GpuConfig) -> Self {
        let n = config.mem_channels;
        let bank_cfg = CacheConfig {
            bytes: config.l2_bytes / n,
            ways: config.l2_ways,
            line_bytes: config.line_bytes,
        };
        MemorySystem {
            icnt_latency: u64::from(config.icnt_latency),
            l2_hit_latency: u64::from(config.l2_hit_latency),
            n_channels: n,
            to_l2: BinaryHeap::new(),
            to_l2_payload: HashMap::new(),
            l2_queues: vec![VecDeque::new(); n],
            l2_banks: (0..n).map(|_| Cache::new(bank_cfg, true)).collect(),
            l2_busy_until: vec![0; n],
            dram: (0..n)
                .map(|_| {
                    DramChannel::new(DramConfig {
                        banks: config.dram_banks,
                        t_rcd: config.dram_t_rcd,
                        t_rp: config.dram_t_rp,
                        t_cas: config.dram_t_cas,
                        t_burst: config.dram_t_burst,
                        ..DramConfig::default()
                    })
                })
                .collect(),
            dram_pending: HashMap::new(),
            responses: BinaryHeap::new(),
            response_payload: HashMap::new(),
            next_token: 0,
            stats: MemStats::default(),
        }
    }

    /// Submits a request from an SM at cycle `now`.
    pub fn submit(&mut self, now: u64, req: MemRequest) {
        let token = self.next_token;
        self.next_token += 1;
        self.to_l2_payload.insert(token, req);
        self.to_l2.push(Reverse(Timed {
            at: now + self.icnt_latency,
            payload: token,
        }));
    }

    fn channel_of(&self, line_addr: u64) -> usize {
        (line_addr % self.n_channels as u64) as usize
    }

    fn schedule_response(&mut self, at: u64, req: MemRequest) {
        if matches!(req.kind, ReqKind::Store) {
            return; // stores are fire-and-forget
        }
        let token = self.next_token;
        self.next_token += 1;
        self.response_payload.insert(
            token,
            MemResponse {
                sm: req.sm,
                warp: req.warp,
                instr_token: req.instr_token,
            },
        );
        self.responses.push(Reverse(Timed {
            at: at + self.icnt_latency,
            payload: token,
        }));
    }

    /// Advances one cycle; returns responses arriving at the SMs this cycle.
    ///
    /// Allocates a fresh response vector per call; the hot path should use
    /// [`MemorySystem::tick_into`] with a reusable buffer instead.
    pub fn tick(&mut self, now: u64) -> Vec<MemResponse> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Advances one cycle, clearing `out` and filling it with the responses
    /// arriving at the SMs this cycle.
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<MemResponse>) {
        out.clear();
        // Interconnect arrivals into the L2 partition queues.
        while let Some(Reverse(t)) = self.to_l2.peek() {
            if t.at > now {
                break;
            }
            let Reverse(t) = self.to_l2.pop().expect("peeked");
            let req = self.to_l2_payload.remove(&t.payload).expect("payload");
            let ch = self.channel_of(req.line_addr);
            self.l2_queues[ch].push_back(req);
        }

        // Each L2 partition serves at most one request per cycle.
        for ch in 0..self.n_channels {
            if self.l2_busy_until[ch] > now {
                continue;
            }
            let Some(req) = self.l2_queues[ch].pop_front() else {
                continue;
            };
            match req.kind {
                ReqKind::Atomic => {
                    // Atomics serialize at the partition: occupy it for a few
                    // cycles and always touch the L2 (allocate).
                    self.stats.atomics += 1;
                    self.stats.l2_accesses += 1;
                    let _ = self.l2_banks[ch].access(req.line_addr, true);
                    self.l2_busy_until[ch] = now + 4;
                    self.schedule_response(now + self.l2_hit_latency, req);
                }
                ReqKind::Load | ReqKind::Store => {
                    self.stats.l2_accesses += 1;
                    let is_write = matches!(req.kind, ReqKind::Store);
                    match self.l2_banks[ch].access(req.line_addr, is_write) {
                        CacheOutcome::Hit => {
                            self.stats.l2_hits += 1;
                            self.schedule_response(now + self.l2_hit_latency, req);
                        }
                        CacheOutcome::Miss { .. } => {
                            self.stats.dram_requests += 1;
                            let token = self.next_token;
                            self.next_token += 1;
                            self.dram_pending.insert(token, req);
                            self.dram[ch].push(DramRequest {
                                line_addr: req.line_addr,
                                token,
                                arrived: now,
                            });
                        }
                    }
                }
            }
        }

        // DRAM channels.
        for ch in 0..self.n_channels {
            for token in self.dram[ch].tick(now) {
                let req = self.dram_pending.remove(&token).expect("pending request");
                self.schedule_response(now, req);
            }
        }

        // Responses arriving at the SMs.
        while let Some(Reverse(t)) = self.responses.peek() {
            if t.at > now {
                break;
            }
            let Reverse(t) = self.responses.pop().expect("peeked");
            out.push(self.response_payload.remove(&t.payload).expect("payload"));
        }
    }

    /// True when nothing is queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.to_l2.is_empty()
            && self.responses.is_empty()
            && self.dram_pending.is_empty()
            && self.l2_queues.iter().all(VecDeque::is_empty)
            && self.dram.iter().all(DramChannel::is_idle)
    }

    /// Subsystem-level statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Per-partition L2 statistics.
    pub fn l2_stats(&self) -> Vec<CacheStats> {
        self.l2_banks.iter().map(|c| c.stats()).collect()
    }

    /// Per-channel DRAM statistics.
    pub fn dram_stats(&self) -> Vec<DramStats> {
        self.dram.iter().map(|d| d.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemorySystem {
        MemorySystem::new(&GpuConfig::default())
    }

    fn drain(ms: &mut MemorySystem, start: u64, limit: u64) -> Vec<(u64, MemResponse)> {
        let mut out = Vec::new();
        let mut now = start;
        while !ms.is_idle() && now < limit {
            for r in ms.tick(now) {
                out.push((now, r));
            }
            now += 1;
        }
        out
    }

    fn load(sm: usize, warp: usize, line: u64, tok: u64) -> MemRequest {
        MemRequest {
            sm,
            warp,
            line_addr: line,
            kind: ReqKind::Load,
            instr_token: tok,
        }
    }

    #[test]
    fn load_roundtrip_produces_one_response() {
        let mut ms = system();
        ms.submit(0, load(3, 7, 1234, 99));
        let out = drain(&mut ms, 0, 10_000);
        assert_eq!(out.len(), 1);
        let (at, r) = out[0];
        assert_eq!((r.sm, r.warp, r.instr_token), (3, 7, 99));
        // icnt + dram (cold miss) + icnt: at least ~40 cycles.
        assert!(at >= 40, "response at {at}");
    }

    #[test]
    fn second_access_hits_l2_and_is_faster() {
        let mut ms = system();
        ms.submit(0, load(0, 0, 42, 1));
        let first = drain(&mut ms, 0, 10_000)[0].0;
        let t0 = first + 1;
        ms.submit(t0, load(0, 1, 42, 2));
        let second = drain(&mut ms, t0, t0 + 10_000)[0].0 - t0;
        assert!(second < first, "L2 hit {second} must beat cold miss {first}");
        assert_eq!(ms.stats().l2_hits, 1);
    }

    #[test]
    fn stores_produce_no_response() {
        let mut ms = system();
        ms.submit(
            0,
            MemRequest {
                sm: 0,
                warp: 0,
                line_addr: 5,
                kind: ReqKind::Store,
                instr_token: 1,
            },
        );
        let out = drain(&mut ms, 0, 10_000);
        assert!(out.is_empty());
        assert!(ms.is_idle());
    }

    #[test]
    fn atomics_respond_and_serialize() {
        let mut ms = system();
        // Two atomics to the same partition serialize (partition busy 4 cyc).
        ms.submit(0, MemRequest { sm: 0, warp: 0, line_addr: 6, kind: ReqKind::Atomic, instr_token: 1 });
        ms.submit(0, MemRequest { sm: 0, warp: 1, line_addr: 6, kind: ReqKind::Atomic, instr_token: 2 });
        let out = drain(&mut ms, 0, 10_000);
        assert_eq!(out.len(), 2);
        assert_eq!(ms.stats().atomics, 2);
        assert!(out[1].0 >= out[0].0 + 4);
    }

    #[test]
    fn channel_interleaving_spreads_lines() {
        let ms = system();
        let mut seen = std::collections::HashSet::new();
        for line in 0..6 {
            seen.insert(ms.channel_of(line));
        }
        assert_eq!(seen.len(), 6, "consecutive lines hit distinct channels");
    }

    #[test]
    fn many_scattered_loads_all_complete() {
        let mut ms = system();
        for i in 0..200u64 {
            ms.submit(0, load(i as usize % 16, i as usize % 48, i * 977, i));
        }
        let out = drain(&mut ms, 0, 100_000);
        assert_eq!(out.len(), 200);
        assert!(ms.is_idle());
    }
}
