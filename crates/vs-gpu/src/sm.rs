//! Streaming-multiprocessor timing model.
//!
//! Each SM holds up to 48 resident warps, dual-issues ready warps per cycle
//! under a GTO (greedy-then-oldest, Table I) or two-level gating-aware
//! scheduler, tracks register dependences with a scoreboard, and owns an L1
//! data cache plus ports into the shared SP / SFU / LSU execution pipelines.
//!
//! The SM is also the actuation point for the cross-layer voltage-smoothing
//! scheme: the issue adjuster realizes fractional issue widths (DIWS) with a
//! 10-cycle down-counter window, fake instructions are injected into issue
//! slack (FII), per-SM frequency scaling models DFS clock masking, and
//! execution units can be power-gated (Warped-Gates-style PG).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::cache::{Cache, CacheConfig, CacheOutcome};
use crate::config::GpuConfig;
use crate::isa::{AccessPattern, ExecUnit, Instruction, MemSpace, Opcode};
use crate::mem::{MemRequest, MemResponse, MemorySystem, ReqKind};
use crate::workload::Kernel;

/// Warp scheduler policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Greedy-then-oldest (GPGPU-Sim's GTO, the paper's Table I setting).
    #[default]
    Gto,
    /// Gating-aware two-level scheduling (Warped Gates' GATES): clusters
    /// same-unit instructions to lengthen idle windows of the other units.
    TwoLevelGates,
}

/// Per-cycle control inputs applied to an SM by the voltage-smoothing
/// controller, the DFS governor, and the power-gating policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmControl {
    /// Average issue width in warps/cycle (DIWS), `0..=2`.
    pub issue_width: f64,
    /// Fake instructions to inject per cycle (FII), `0..=2`.
    pub fake_rate: f64,
    /// Clock scaling for DFS: fraction of cycles this SM is clocked, `0..=1`.
    pub freq_scale: f64,
    /// Whole-SM power gate (used by the worst-case imbalance scenario).
    pub sm_gated: bool,
    /// Enables execution-unit power gating.
    pub unit_gating: bool,
    /// Idle cycles before a unit is gated (Warped Gates' idle-detect).
    pub gating_idle_detect: u32,
}

impl Default for SmControl {
    fn default() -> Self {
        SmControl {
            issue_width: 2.0,
            fake_rate: 0.0,
            freq_scale: 1.0,
            sm_gated: false,
            unit_gating: false,
            gating_idle_detect: IDLE_DETECT,
        }
    }
}

/// Microarchitectural events of one SM cycle; the power model's input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmCycleStats {
    /// SM was clocked this cycle (false under DFS masking / SM gating).
    pub active: bool,
    /// Warp instructions issued to SP pipelines.
    pub issued_sp: u8,
    /// Warp instructions issued to the SFU.
    pub issued_sfu: u8,
    /// Warp instructions issued to the LSU.
    pub issued_lsu: u8,
    /// Fake (injected) instructions issued.
    pub issued_fake: u8,
    /// Control instructions (barrier/exit) retired.
    pub issued_ctrl: u8,
    /// L1 hits this cycle.
    pub l1_hits: u8,
    /// L1 misses this cycle (transactions sent downstream).
    pub l1_misses: u8,
    /// Shared-memory accesses.
    pub shared_accesses: u8,
    /// Global stores submitted.
    pub stores: u8,
    /// Atomics submitted.
    pub atomics: u8,
    /// SP pipelines power-gated this cycle.
    pub sp_gated: bool,
    /// SFU power-gated this cycle.
    pub sfu_gated: bool,
    /// LSU power-gated this cycle.
    pub lsu_gated: bool,
    /// Unit wake-ups triggered this cycle (each costs break-even energy).
    pub unit_wakeups: u8,
    /// Number of warps still resident (not done).
    pub live_warps: u8,
}

impl SmCycleStats {
    /// Total real instructions issued this cycle.
    pub fn issued_total(&self) -> u32 {
        u32::from(self.issued_sp) + u32::from(self.issued_sfu) + u32::from(self.issued_lsu)
    }
}

/// Lifetime statistics of an SM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Cycles the SM was clocked.
    pub active_cycles: u64,
    /// Cycles the SM existed (clocked or not).
    pub total_cycles: u64,
    /// Real warp instructions retired.
    pub instructions: u64,
    /// Fake instructions injected.
    pub fake_instructions: u64,
    /// Cycles where at least one instruction issued.
    pub issue_cycles: u64,
}

impl SmStats {
    /// Average issue rate in warps/cycle over active cycles.
    pub fn ipc(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.active_cycles as f64
        }
    }

    /// Cycles the SM was clocked but issued nothing (stalled on memory,
    /// scoreboard hazards, or an empty warp pool).
    pub fn stall_cycles(&self) -> u64 {
        self.active_cycles.saturating_sub(self.issue_cycles)
    }

    /// Fraction of active cycles spent stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.stall_cycles() as f64 / self.active_cycles as f64
        }
    }
}

/// Shared pool of kernel-body batches, drained by all SMs — the analogue of
/// a CUDA grid's CTA pool: SMs stay busy until the grid is exhausted, so
/// per-SM speed differences shift *who* does the work, not how long some SMs
/// idle at the end.
#[derive(Debug, Clone, Copy)]
pub struct WorkPool {
    remaining: u64,
}

impl WorkPool {
    /// Creates a pool with `batches` kernel-body executions to hand out.
    pub fn new(batches: u64) -> Self {
        WorkPool { remaining: batches }
    }

    /// Takes one batch; false when the pool is dry.
    pub fn try_take(&mut self) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            true
        } else {
            false
        }
    }

    /// Batches left.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

#[derive(Debug, Clone)]
struct WarpCtx {
    pc: usize,
    /// Current batch iteration counter: how many body repeats remain in the
    /// batch this warp holds (batches are `iters_per_batch` body runs).
    iters_left: u32,
    pending: u32,
    at_barrier: bool,
    done: bool,
    inflight_mem_instrs: u32,
}

const ISSUE_WINDOW: u64 = 10;
/// Default Warped-Gates idle-detect threshold, cycles.
pub(crate) const IDLE_DETECT: u32 = 5;
/// Active-set size of the two-level (GATES) scheduler; large enough to
/// hide ALU latency, small enough to cluster unit usage.
const ACTIVE_SET_SIZE: usize = 16;
const WAKE_LATENCY: u64 = 3;
const MAX_INFLIGHT_MEM: u32 = 6;

#[derive(Debug, Clone, Copy, Default)]
struct UnitState {
    free_at: u64,
    idle_cycles: u32,
    gated: bool,
    wake_at: u64,
}

/// Outcome of an issue attempt, distinguishing "the warp itself is blocked"
/// (scoreboard hazard, barrier, done, memory throttle) from "the warp is
/// ready but its execution port is busy or waking". Only the former may
/// clear a warp's maybe-ready bit: port state changes on its own with time,
/// warp state only changes through an observable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueOutcome {
    Issued,
    PortBlocked,
    NotReady,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: usize,
    body: Vec<Instruction>,
    /// Per-pc scoreboard mask (dst | srcs), precomputed so `warp_ready`
    /// is a table lookup instead of an instruction decode.
    body_masks: Vec<u32>,
    /// Per-pc flag: instruction counts against `MAX_INFLIGHT_MEM`.
    body_throttled: Vec<bool>,
    warps: Vec<WarpCtx>,
    /// Warps not yet done — maintained incrementally (decremented when a
    /// warp retires) instead of recounted every cycle.
    live_warps: u32,
    /// Conservative per-warp "maybe ready" mask: a cleared bit means the
    /// warp is definitely not issuable; a set bit means it must be checked.
    /// Bits are set on every event that can unblock a warp (writeback
    /// retirement, memory response, barrier release) and cleared lazily
    /// when a scan proves the warp blocked, so schedule order is identical
    /// to a full scan — blocked warps are just skipped cheaply.
    ready_mask: u128,
    /// Set bit per non-done warp (cleared on retirement).
    live_mask: u128,
    /// Active-set membership mask for the two-level scheduler (rebuilt each
    /// active cycle, kept in sync across slot swaps within the cycle).
    active_mask: u128,
    /// Warps currently stalled at a barrier; lets the per-cycle barrier
    /// resolution exit immediately when nobody is waiting.
    barrier_waiting: u32,
    /// False when the warp pool exceeds 128 warps and the masks cannot be
    /// represented; scans then fall back to the full-check path.
    mask_enabled: bool,
    warps_per_cta: usize,
    l1: Cache,
    control: SmControl,
    scheduler: SchedulerKind,
    greedy: usize,
    preferred_unit: ExecUnit,
    active_set: Vec<usize>,
    /// Reusable candidate-order scratch for the two-level scheduler.
    order: Vec<usize>,
    /// Reusable line-address scratch for memory instructions.
    lines_buf: Vec<u64>,
    /// Reusable L1-miss scratch for global loads.
    missed_buf: Vec<u64>,
    rr_cursor: usize,
    sp: UnitState,
    sfu: UnitState,
    lsu: UnitState,
    writebacks: BinaryHeap<Reverse<(u64, usize, u32)>>,
    outstanding: HashMap<u64, (usize, u32, u32)>, // token -> (warp, reg mask, remaining)
    next_token: u64,
    freq_acc: f64,
    fake_acc: f64,
    grants_left: u32,
    active_cycle: u64,
    working_set_lines: u64,
    sp_latency: u64,
    sfu_latency: u64,
    shared_latency: u64,
    l1_hit_latency: u64,
    stats: SmStats,
}

impl Sm {
    /// Creates an SM running `kernel`. Work is drawn from a shared
    /// [`WorkPool`]; each warp starts holding one batch.
    pub fn new(id: usize, config: &GpuConfig, kernel: &Kernel, scheduler: SchedulerKind) -> Self {
        let warps: Vec<WarpCtx> = (0..kernel.warps_per_sm)
            .map(|_| WarpCtx {
                pc: 0,
                iters_left: 1,
                pending: 0,
                at_barrier: false,
                done: false,
                inflight_mem_instrs: 0,
            })
            .collect();
        let body_masks = kernel
            .body
            .iter()
            .map(|instr| {
                let mut mask = 0u32;
                if let Some(d) = instr.dst {
                    mask |= 1 << (d.0 as u32 % 32);
                }
                for s in instr.srcs.iter().flatten() {
                    mask |= 1 << (s.0 as u32 % 32);
                }
                mask
            })
            .collect();
        let body_throttled = kernel
            .body
            .iter()
            .map(|i| matches!(i.opcode, Opcode::Ld(MemSpace::Global) | Opcode::Atom))
            .collect();
        let live_warps = warps.len() as u32;
        let mask_enabled = warps.len() <= 128;
        let ready_mask = if warps.len() >= 128 {
            u128::MAX
        } else {
            (1u128 << warps.len()) - 1
        };
        Sm {
            id,
            body: kernel.body.clone(),
            body_masks,
            body_throttled,
            warps,
            live_warps,
            ready_mask,
            live_mask: ready_mask,
            active_mask: 0,
            barrier_waiting: 0,
            mask_enabled,
            warps_per_cta: config.warps_per_cta,
            l1: Cache::new(
                CacheConfig {
                    bytes: config.l1_bytes,
                    ways: config.l1_ways,
                    line_bytes: config.line_bytes,
                },
                false,
            ),
            control: SmControl::default(),
            scheduler,
            greedy: 0,
            preferred_unit: ExecUnit::Sp,
            active_set: (0..kernel.warps_per_sm.min(ACTIVE_SET_SIZE)).collect(),
            order: Vec::new(),
            lines_buf: Vec::new(),
            missed_buf: Vec::new(),
            rr_cursor: 0,
            sp: UnitState::default(),
            sfu: UnitState::default(),
            lsu: UnitState::default(),
            writebacks: BinaryHeap::new(),
            outstanding: HashMap::new(),
            next_token: 0,
            freq_acc: 0.0,
            fake_acc: 0.0,
            grants_left: 2 * ISSUE_WINDOW as u32,
            active_cycle: 0,
            working_set_lines: kernel_working_set(kernel),
            sp_latency: u64::from(config.sp_latency),
            sfu_latency: u64::from(config.sfu_latency),
            shared_latency: u64::from(config.shared_latency),
            l1_hit_latency: u64::from(config.l1_hit_latency),
            stats: SmStats::default(),
        }
    }

    /// This SM's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Applies new control inputs (effective next cycle).
    pub fn set_control(&mut self, control: SmControl) {
        self.control = control;
    }

    /// Current control inputs.
    pub fn control(&self) -> SmControl {
        self.control
    }

    /// True when every warp has retired all its iterations.
    pub fn done(&self) -> bool {
        self.warps.iter().all(|w| w.done)
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> crate::cache::CacheStats {
        self.l1.stats()
    }

    /// Delivers a memory response to this SM.
    pub fn on_response(&mut self, resp: &MemResponse) {
        if let Some((warp, mask, remaining)) = self.outstanding.get_mut(&resp.instr_token) {
            *remaining -= 1;
            if *remaining == 0 {
                let w = *warp;
                let m = *mask;
                self.outstanding.remove(&resp.instr_token);
                let ctx = &mut self.warps[w];
                ctx.pending &= !m;
                ctx.inflight_mem_instrs = ctx.inflight_mem_instrs.saturating_sub(1);
                self.mark_maybe_ready(w);
            }
        }
    }

    /// Records that `w` may have become issuable again.
    #[inline]
    fn mark_maybe_ready(&mut self, w: usize) {
        if self.mask_enabled {
            self.ready_mask |= 1u128 << w;
        }
    }

    /// [`Sm::warp_ready`] with the maybe-ready fast path: a cleared mask bit
    /// short-circuits to false, and a full check that fails clears the bit.
    fn warp_ready_lazy(&mut self, w: usize) -> bool {
        if self.mask_enabled && self.ready_mask & (1u128 << w) == 0 {
            return false;
        }
        if self.warp_ready(w) {
            true
        } else {
            if self.mask_enabled {
                self.ready_mask &= !(1u128 << w);
            }
            false
        }
    }

    /// Active-set membership test for the two-level scheduler.
    #[inline]
    fn in_active_set(&self, w: usize) -> bool {
        if self.mask_enabled {
            self.active_mask & (1u128 << w) != 0
        } else {
            self.active_set.contains(&w)
        }
    }

    fn unit_mut(&mut self, u: ExecUnit) -> &mut UnitState {
        match u {
            ExecUnit::Sp => &mut self.sp,
            ExecUnit::Sfu => &mut self.sfu,
            ExecUnit::Lsu => &mut self.lsu,
            ExecUnit::None => unreachable!("control instructions have no unit"),
        }
    }

    fn unit_issue_interval(&self, u: ExecUnit) -> u64 {
        match u {
            // Two 16-wide SP blocks: a 32-thread warp occupies a block for 2
            // cycles, and with two blocks the SM sustains ~1 SP warp/cycle;
            // dual issue allows an SP + another-unit pair each cycle.
            ExecUnit::Sp => 1,
            // 4 SFU lanes: 32 threads take 8 cycles.
            ExecUnit::Sfu => 8,
            // 16 LSU lanes: 2 cycles per warp.
            ExecUnit::Lsu => 2,
            ExecUnit::None => 0,
        }
    }

    /// Releases a CTA's barrier once all its live warps have arrived.
    fn resolve_barriers(&mut self) {
        if self.barrier_waiting == 0 {
            return;
        }
        let n = self.warps.len();
        let per = self.warps_per_cta.max(1);
        let mut cta = 0;
        while cta * per < n {
            let lo = cta * per;
            let hi = ((cta + 1) * per).min(n);
            let all_arrived = self.warps[lo..hi]
                .iter()
                .all(|w| w.done || w.at_barrier);
            let any_waiting = self.warps[lo..hi].iter().any(|w| w.at_barrier);
            if all_arrived && any_waiting {
                for w in lo..hi {
                    if self.warps[w].at_barrier {
                        self.warps[w].at_barrier = false;
                        self.warps[w].pc += 1;
                        self.barrier_waiting -= 1;
                        self.mark_maybe_ready(w);
                    }
                }
            }
            cta += 1;
        }
    }

    fn warp_ready(&self, w: usize) -> bool {
        let ctx = &self.warps[w];
        if ctx.done || ctx.at_barrier {
            return false;
        }
        if ctx.pending & self.body_masks[ctx.pc] != 0 {
            return false;
        }
        if self.body_throttled[ctx.pc] && ctx.inflight_mem_instrs >= MAX_INFLIGHT_MEM {
            return false;
        }
        true
    }

    /// Next inactive, non-done, *ready* warp in round-robin order.
    fn find_ready_inactive(&mut self) -> Option<usize> {
        if self.mask_enabled && self.ready_mask & !self.active_mask == 0 {
            return None; // no inactive warp can be ready
        }
        let n = self.warps.len();
        for step in 0..n {
            let w = (self.rr_cursor + step) % n;
            if self.in_active_set(w) || self.warps[w].done {
                continue;
            }
            if self.warp_ready_lazy(w) {
                self.rr_cursor = (w + 1) % n;
                return Some(w);
            }
        }
        None
    }

    /// Next inactive, non-done warp (ready or not) in round-robin order.
    fn find_any_inactive(&mut self) -> Option<usize> {
        if self.mask_enabled && self.live_mask & !self.active_mask == 0 {
            return None; // every live warp is already in the active set
        }
        let n = self.warps.len();
        for step in 0..n {
            let w = (self.rr_cursor + step) % n;
            if self.in_active_set(w) || self.warps[w].done {
                continue;
            }
            self.rr_cursor = (w + 1) % n;
            return Some(w);
        }
        None
    }

    /// Deterministic line-address generator for a warp access; fills `out`
    /// (a reusable scratch buffer) instead of allocating.
    fn gen_lines_into(
        &self,
        warp: usize,
        pc: usize,
        iter: u32,
        pattern: AccessPattern,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        let ws = self.working_set_lines;
        let n = pattern.transactions() as u64;
        let mix = |a: u64, b: u64, c: u64| -> u64 {
            let mut h = 0x9e3779b97f4a7c15u64 ^ a;
            h = h.wrapping_mul(0xbf58476d1ce4e5b9) ^ b.rotate_left(17);
            h = h.wrapping_mul(0x94d049bb133111eb) ^ c.rotate_left(31);
            h ^ (h >> 29)
        };
        match pattern {
            AccessPattern::Coalesced { .. } => {
                // Streaming with cross-warp sharing and short temporal reuse.
                let base = mix(pc as u64, u64::from(iter / 2), warp as u64 / 2) % ws;
                out.extend((0..n).map(|t| (base + t) % ws));
            }
            AccessPattern::Strided { stride_lines, .. } => {
                let base = mix(pc as u64, u64::from(iter), warp as u64) % ws;
                out.extend((0..n).map(|t| (base + t * u64::from(stride_lines)) % ws));
            }
            AccessPattern::Random { .. } => {
                out.extend((0..n).map(|t| mix(pc as u64 ^ t << 33, u64::from(iter), warp as u64) % ws));
            }
        }
    }

    /// Attempts to issue warp `w`'s next instruction.
    #[allow(clippy::too_many_lines)]
    fn try_issue(
        &mut self,
        w: usize,
        now: u64,
        mem: &mut MemorySystem,
        pool: &mut WorkPool,
        stats: &mut SmCycleStats,
    ) -> IssueOutcome {
        if !self.warp_ready(w) {
            return IssueOutcome::NotReady;
        }
        let ctx_pc = self.warps[w].pc;
        let instr = self.body[ctx_pc];
        let unit = instr.unit();

        if unit != ExecUnit::None {
            // Port availability and power-gating wake-up.
            let gating = self.control.unit_gating;
            let u = self.unit_mut(unit);
            if u.free_at > now {
                return IssueOutcome::PortBlocked;
            }
            if gating && u.gated {
                if u.wake_at == 0 {
                    u.wake_at = now + WAKE_LATENCY;
                    stats.unit_wakeups += 1;
                }
                if u.wake_at > now {
                    return IssueOutcome::PortBlocked;
                }
                u.gated = false;
                u.wake_at = 0;
            }
        }

        // Commit the issue.
        let iter = self.warps[w].iters_left;
        match instr.opcode {
            Opcode::IAlu | Opcode::FAlu | Opcode::Ffma => {
                stats.issued_sp += 1;
                let lat = self.sp_latency;
                let ii = self.unit_issue_interval(ExecUnit::Sp);
                self.sp.free_at = now + ii;
                self.sp.idle_cycles = 0;
                if let Some(d) = instr.dst {
                    let bit = 1u32 << (d.0 as u32 % 32);
                    self.warps[w].pending |= bit;
                    self.writebacks.push(Reverse((now + lat, w, bit)));
                }
                self.warps[w].pc += 1;
            }
            Opcode::Sfu(_) => {
                stats.issued_sfu += 1;
                let lat = self.sfu_latency;
                let ii = self.unit_issue_interval(ExecUnit::Sfu);
                self.sfu.free_at = now + ii;
                self.sfu.idle_cycles = 0;
                if let Some(d) = instr.dst {
                    let bit = 1u32 << (d.0 as u32 % 32);
                    self.warps[w].pending |= bit;
                    self.writebacks.push(Reverse((now + lat, w, bit)));
                }
                self.warps[w].pc += 1;
            }
            Opcode::Ld(MemSpace::Shared) => {
                stats.issued_lsu += 1;
                stats.shared_accesses += 1;
                let ii = self.unit_issue_interval(ExecUnit::Lsu);
                self.lsu.free_at = now + ii;
                self.lsu.idle_cycles = 0;
                if let Some(d) = instr.dst {
                    let bit = 1u32 << (d.0 as u32 % 32);
                    self.warps[w].pending |= bit;
                    self.writebacks.push(Reverse((now + self.shared_latency, w, bit)));
                }
                self.warps[w].pc += 1;
            }
            Opcode::Ld(MemSpace::Global) => {
                stats.issued_lsu += 1;
                let ii = self.unit_issue_interval(ExecUnit::Lsu);
                self.lsu.free_at = now + ii;
                self.lsu.idle_cycles = 0;
                let pattern = instr.pattern.unwrap_or(AccessPattern::Coalesced { n_lines: 1 });
                let mut lines = std::mem::take(&mut self.lines_buf);
                let mut missed = std::mem::take(&mut self.missed_buf);
                self.gen_lines_into(w, ctx_pc, iter, pattern, &mut lines);
                missed.clear();
                for line in &lines {
                    match self.l1.access(*line, false) {
                        CacheOutcome::Hit => stats.l1_hits = stats.l1_hits.saturating_add(1),
                        CacheOutcome::Miss { .. } => {
                            stats.l1_misses = stats.l1_misses.saturating_add(1);
                            missed.push(*line);
                        }
                    }
                }
                if let Some(d) = instr.dst {
                    let bit = 1u32 << (d.0 as u32 % 32);
                    self.warps[w].pending |= bit;
                    if missed.is_empty() {
                        self.writebacks.push(Reverse((now + self.l1_hit_latency, w, bit)));
                    } else {
                        let token = self.next_token;
                        self.next_token += 1;
                        self.outstanding.insert(token, (w, bit, missed.len() as u32));
                        self.warps[w].inflight_mem_instrs += 1;
                        for &line in &missed {
                            mem.submit(
                                now,
                                MemRequest {
                                    sm: self.id,
                                    warp: w,
                                    line_addr: line,
                                    kind: ReqKind::Load,
                                    instr_token: token,
                                },
                            );
                        }
                    }
                }
                self.warps[w].pc += 1;
                self.lines_buf = lines;
                self.missed_buf = missed;
            }
            Opcode::St(space) => {
                stats.issued_lsu += 1;
                let ii = self.unit_issue_interval(ExecUnit::Lsu);
                self.lsu.free_at = now + ii;
                self.lsu.idle_cycles = 0;
                if matches!(space, MemSpace::Global) {
                    stats.stores += 1;
                    let pattern = instr.pattern.unwrap_or(AccessPattern::Coalesced { n_lines: 1 });
                    let mut lines = std::mem::take(&mut self.lines_buf);
                    self.gen_lines_into(w, ctx_pc, iter, pattern, &mut lines);
                    for &line in &lines {
                        let _ = self.l1.access(line, true); // write-through
                        mem.submit(
                            now,
                            MemRequest {
                                sm: self.id,
                                warp: w,
                                line_addr: line,
                                kind: ReqKind::Store,
                                instr_token: u64::MAX,
                            },
                        );
                    }
                    self.lines_buf = lines;
                } else {
                    stats.shared_accesses += 1;
                }
                self.warps[w].pc += 1;
            }
            Opcode::Atom => {
                stats.issued_lsu += 1;
                stats.atomics += 1;
                let ii = self.unit_issue_interval(ExecUnit::Lsu);
                self.lsu.free_at = now + ii;
                self.lsu.idle_cycles = 0;
                let pattern = instr.pattern.unwrap_or(AccessPattern::Random { n_lines: 4 });
                let mut lines = std::mem::take(&mut self.lines_buf);
                self.gen_lines_into(w, ctx_pc, iter, pattern, &mut lines);
                if let Some(d) = instr.dst {
                    let bit = 1u32 << (d.0 as u32 % 32);
                    self.warps[w].pending |= bit;
                    let token = self.next_token;
                    self.next_token += 1;
                    self.outstanding.insert(token, (w, bit, lines.len() as u32));
                    self.warps[w].inflight_mem_instrs += 1;
                    for &line in &lines {
                        mem.submit(
                            now,
                            MemRequest {
                                sm: self.id,
                                warp: w,
                                line_addr: line,
                                kind: ReqKind::Atomic,
                                instr_token: token,
                            },
                        );
                    }
                }
                self.warps[w].pc += 1;
                self.lines_buf = lines;
            }
            Opcode::Bar => {
                stats.issued_ctrl += 1;
                self.warps[w].at_barrier = true;
                self.barrier_waiting += 1;
                // pc advances on barrier release.
            }
            Opcode::Exit => {
                stats.issued_ctrl += 1;
                let ctx = &mut self.warps[w];
                ctx.iters_left = ctx.iters_left.saturating_sub(1);
                if ctx.iters_left == 0 {
                    // Batch retired: grab the next one from the grid pool.
                    if pool.try_take() {
                        ctx.iters_left = 1;
                        ctx.pc = 0;
                    } else {
                        ctx.done = true;
                        self.live_warps -= 1;
                        if self.mask_enabled {
                            let bit = !(1u128 << w);
                            self.live_mask &= bit;
                            self.ready_mask &= bit;
                        }
                    }
                } else {
                    ctx.pc = 0;
                }
            }
        }
        if unit != ExecUnit::None {
            self.preferred_unit = unit;
            self.stats.instructions += 1;
        }
        IssueOutcome::Issued
    }

    /// Advances the SM one GPU cycle, drawing new batches from `pool` as
    /// warps retire theirs.
    pub fn tick(&mut self, now: u64, mem: &mut MemorySystem, pool: &mut WorkPool) -> SmCycleStats {
        let mut stats = SmCycleStats::default();
        self.stats.total_cycles += 1;
        stats.live_warps = self.live_warps as u8;

        // DFS clock masking and whole-SM gating.
        if self.control.sm_gated {
            return stats;
        }
        self.freq_acc += self.control.freq_scale.clamp(0.0, 1.0);
        if self.freq_acc < 1.0 {
            return stats;
        }
        self.freq_acc -= 1.0;
        stats.active = true;
        self.stats.active_cycles += 1;
        self.active_cycle += 1;

        // Retire completed writebacks.
        while let Some(Reverse((at, w, bit))) = self.writebacks.peek().copied() {
            if at > now {
                break;
            }
            self.writebacks.pop();
            self.warps[w].pending &= !bit;
            self.mark_maybe_ready(w);
        }

        self.resolve_barriers();

        // Issue-width window (the DIWS issue adjuster).
        if self.active_cycle % ISSUE_WINDOW == 1 {
            self.grants_left = (self.control.issue_width.clamp(0.0, 2.0)
                * ISSUE_WINDOW as f64)
                .round() as u32;
        }

        // Scheduler: candidate ordering and issue.
        let n = self.warps.len();
        let mut issued = 0u32;
        match self.scheduler {
            SchedulerKind::Gto => {
                // Greedy warp first, then the rest in ascending index order.
                // The candidate sequence is walked through the maybe-ready
                // mask (cleared bits are warps proven blocked, which a full
                // scan would skip without side effects), so the schedule is
                // identical to materializing the full order each cycle. The
                // greedy pointer is snapshotted so mid-loop updates do not
                // reshuffle candidates.
                let greedy = self.greedy;
                if self.mask_enabled {
                    let mut cand = self.ready_mask;
                    let mut greedy_pending = cand & (1u128 << greedy) != 0;
                    cand &= !(1u128 << greedy);
                    while issued < 2 && self.grants_left > 0 {
                        let w = if greedy_pending {
                            greedy_pending = false;
                            greedy
                        } else if cand != 0 {
                            let w = cand.trailing_zeros() as usize;
                            cand &= cand - 1;
                            w
                        } else {
                            break;
                        };
                        if self.warps[w].done {
                            self.ready_mask &= !(1u128 << w);
                            continue;
                        }
                        match self.try_issue(w, now, mem, pool, &mut stats) {
                            IssueOutcome::Issued => {
                                issued += 1;
                                self.grants_left -= 1;
                                self.greedy = w;
                            }
                            IssueOutcome::NotReady => self.ready_mask &= !(1u128 << w),
                            IssueOutcome::PortBlocked => {}
                        }
                    }
                } else {
                    for pos in 0..n {
                        if issued >= 2 || self.grants_left == 0 {
                            break;
                        }
                        let w = if pos == 0 {
                            greedy
                        } else {
                            let k = pos - 1;
                            if k < greedy {
                                k
                            } else {
                                k + 1
                            }
                        };
                        if w >= n || self.warps[w].done {
                            continue;
                        }
                        if self.try_issue(w, now, mem, pool, &mut stats) == IssueOutcome::Issued {
                            issued += 1;
                            self.grants_left -= 1;
                            self.greedy = w;
                        }
                    }
                }
            }
            SchedulerKind::TwoLevelGates => {
                // Two-level scheduling (Warped Gates' GATES): only a small
                // active set of warps competes for issue; warps that block
                // on memory or barriers are swapped out for ready pending
                // warps. The narrower instruction window naturally clusters
                // execution-unit usage, lengthening the idle windows the
                // gating logic needs, without convoying the whole SM.
                self.active_set.retain(|&w| !self.warps[w].done);
                if self.mask_enabled {
                    self.active_mask = self
                        .active_set
                        .iter()
                        .fold(0u128, |m, &w| m | (1u128 << w));
                }
                // Swap blocked active warps for ready inactive ones.
                for slot in 0..self.active_set.len() {
                    let w = self.active_set[slot];
                    if !self.warp_ready_lazy(w) {
                        if let Some(repl) = self.find_ready_inactive() {
                            self.active_set[slot] = repl;
                            if self.mask_enabled {
                                self.active_mask &= !(1u128 << w);
                                self.active_mask |= 1u128 << repl;
                            }
                        }
                    }
                }
                // Refill after retirements.
                while self.active_set.len() < ACTIVE_SET_SIZE {
                    match self.find_any_inactive() {
                        Some(w) => {
                            self.active_set.push(w);
                            if self.mask_enabled {
                                self.active_mask |= 1u128 << w;
                            }
                        }
                        None => break,
                    }
                }
                let mut order = std::mem::take(&mut self.order);
                order.clear();
                if let Some(pos) = self.active_set.iter().position(|&w| w == self.greedy) {
                    order.push(self.active_set[pos]);
                }
                order.extend(self.active_set.iter().copied().filter(|&w| w != self.greedy));
                for &w in &order {
                    if issued >= 2 || self.grants_left == 0 {
                        break;
                    }
                    if w >= n || self.warps[w].done {
                        continue;
                    }
                    if self.try_issue(w, now, mem, pool, &mut stats) == IssueOutcome::Issued {
                        issued += 1;
                        self.grants_left -= 1;
                        self.greedy = w;
                    }
                }
                self.order = order;
            }
        }
        if issued > 0 {
            self.stats.issue_cycles += 1;
        }

        // Fake-instruction injection into issue slack (FII).
        self.fake_acc += self.control.fake_rate.clamp(0.0, 2.0);
        while self.fake_acc >= 1.0 && issued < 2 && self.sp.free_at <= now {
            self.fake_acc -= 1.0;
            issued += 1;
            stats.issued_fake += 1;
            self.stats.fake_instructions += 1;
            self.sp.free_at = now + self.unit_issue_interval(ExecUnit::Sp);
            self.sp.idle_cycles = 0;
        }
        self.fake_acc = self.fake_acc.min(4.0);

        // Execution-unit idle tracking and power gating.
        for unit in [ExecUnit::Sp, ExecUnit::Sfu, ExecUnit::Lsu] {
            let gating = self.control.unit_gating;
            let idle_detect = self.control.gating_idle_detect.max(1);
            let u = self.unit_mut(unit);
            if u.free_at <= now {
                u.idle_cycles = u.idle_cycles.saturating_add(1);
            }
            if gating && !u.gated && u.idle_cycles > idle_detect {
                u.gated = true;
            }
            if !gating {
                u.gated = false;
                u.wake_at = 0;
            }
        }
        stats.sp_gated = self.sp.gated;
        stats.sfu_gated = self.sfu.gated;
        stats.lsu_gated = self.lsu.gated;

        stats
    }
}

/// Working-set size (in cache lines) for a kernel, derived from its access
/// character: graph-like random access sweeps a large footprint, coalesced
/// streaming kernels reuse a compact one.
fn kernel_working_set(kernel: &Kernel) -> u64 {
    let has_random = kernel.body.iter().any(|i| {
        matches!(
            i.pattern,
            Some(AccessPattern::Random { .. })
        )
    });
    let max_lines = kernel
        .body
        .iter()
        .filter_map(|i| i.pattern.map(|p| p.transactions()))
        .max()
        .unwrap_or(1);
    if has_random {
        1 << 17 // 16 MiB: thrashes L2
    } else if max_lines <= 2 {
        1 << 12 // 512 KiB: partial L2 reuse
    } else {
        1 << 15 // 4 MiB
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{benchmark, build_kernel};

    /// A per-SM pool share for single-SM tests: 8 warps x 4 iterations.
    fn test_pool() -> WorkPool {
        WorkPool::new(8 * 4)
    }

    fn small_kernel() -> Kernel {
        let cfg = GpuConfig::default();
        let mut k = build_kernel(&benchmark("heartwall").unwrap(), &cfg, 1);
        k.warps_per_sm = 8;
        k.iterations = 4;
        k.sm_iteration_scale = vec![1.0; cfg.n_sms];
        k
    }

    fn run_to_completion(sm: &mut Sm, mem: &mut MemorySystem, limit: u64) -> u64 {
        let mut pool = test_pool();
        let mut now = 0;
        while !sm.done() && now < limit {
            sm.tick(now, mem, &mut pool);
            for r in mem.tick(now) {
                if r.sm == sm.id() {
                    sm.on_response(&r);
                }
            }
            now += 1;
        }
        now
    }

    #[test]
    fn kernel_runs_to_completion() {
        let cfg = GpuConfig::default();
        let k = small_kernel();
        let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        let mut mem = MemorySystem::new(&cfg);
        let cycles = run_to_completion(&mut sm, &mut mem, 2_000_000);
        assert!(sm.done(), "did not finish in {cycles} cycles");
        assert!(sm.stats().instructions > 0);
    }

    #[test]
    fn stall_counters_partition_active_cycles() {
        let cfg = GpuConfig::default();
        let k = small_kernel();
        let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        let mut mem = MemorySystem::new(&cfg);
        run_to_completion(&mut sm, &mut mem, 2_000_000);
        let s = sm.stats();
        assert_eq!(s.stall_cycles() + s.issue_cycles, s.active_cycles);
        let f = s.stall_fraction();
        assert!((0.0..=1.0).contains(&f), "stall fraction {f}");
        // heartwall has memory phases: some stall cycles must show up.
        assert!(s.stall_cycles() > 0, "no stalls recorded: {s:?}");
        assert_eq!(SmStats::default().stall_fraction(), 0.0);
    }

    #[test]
    fn issue_rate_in_papers_range() {
        // The paper reports 0.8-1.8 warps/cycle average issue rates.
        let cfg = GpuConfig::default();
        for name in ["heartwall", "blackscholes", "hotspot"] {
            let k = build_kernel(&benchmark(name).unwrap(), &cfg, 1);
            let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
            let mut mem = MemorySystem::new(&cfg);
            run_to_completion(&mut sm, &mut mem, 5_000_000);
            assert!(sm.done(), "{name} did not finish");
            let ipc = sm.stats().ipc();
            assert!(
                (0.4..=2.0).contains(&ipc),
                "{name}: issue rate {ipc} out of plausible range"
            );
        }
    }

    #[test]
    fn diws_throttling_slows_execution() {
        let cfg = GpuConfig::default();
        let k = small_kernel();
        let mut mem1 = MemorySystem::new(&cfg);
        let mut full = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        let t_full = run_to_completion(&mut full, &mut mem1, 2_000_000);

        let mut mem2 = MemorySystem::new(&cfg);
        let mut half = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        half.set_control(SmControl {
            issue_width: 0.5,
            ..SmControl::default()
        });
        let t_half = run_to_completion(&mut half, &mut mem2, 4_000_000);
        assert!(half.done());
        assert!(
            t_half > t_full,
            "issue throttling must slow execution: {t_full} vs {t_half}"
        );
    }

    #[test]
    fn diws_penalty_is_sublinear_for_stall_heavy_code() {
        // With stalls, reducing peak issue width costs less than its
        // proportional share (the paper's key DIWS observation).
        let cfg = GpuConfig::default();
        let k = build_kernel(&benchmark("bfs").unwrap(), &cfg, 1);
        let mut mem1 = MemorySystem::new(&cfg);
        let mut full = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        let t_full = run_to_completion(&mut full, &mut mem1, 20_000_000) as f64;

        let mut mem2 = MemorySystem::new(&cfg);
        let mut threequarters = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        threequarters.set_control(SmControl {
            issue_width: 1.5,
            ..SmControl::default()
        });
        let t_tq = run_to_completion(&mut threequarters, &mut mem2, 20_000_000) as f64;
        assert!(threequarters.done());
        // 25% issue reduction must cost far less than 25% time.
        assert!(
            t_tq / t_full < 1.20,
            "penalty {:.3} too high for memory-bound code",
            t_tq / t_full - 1.0
        );
    }

    #[test]
    fn fake_injection_counts_but_does_not_block_completion() {
        let cfg = GpuConfig::default();
        let k = small_kernel();
        let mut mem = MemorySystem::new(&cfg);
        let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        sm.set_control(SmControl {
            fake_rate: 1.0,
            ..SmControl::default()
        });
        run_to_completion(&mut sm, &mut mem, 4_000_000);
        assert!(sm.done());
        assert!(sm.stats().fake_instructions > 0);
    }

    #[test]
    fn freq_scaling_halves_active_cycles() {
        let cfg = GpuConfig::default();
        let k = small_kernel();
        let mut mem = MemorySystem::new(&cfg);
        let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        sm.set_control(SmControl {
            freq_scale: 0.5,
            ..SmControl::default()
        });
        let mut pool = test_pool();
        let mut active = 0u64;
        for now in 0..10_000 {
            if sm.tick(now, &mut mem, &mut pool).active {
                active += 1;
            }
            for r in mem.tick(now) {
                sm.on_response(&r);
            }
        }
        assert!((4_900..=5_100).contains(&active), "active {active}");
    }

    #[test]
    fn sm_gating_freezes_execution() {
        let cfg = GpuConfig::default();
        let k = small_kernel();
        let mut mem = MemorySystem::new(&cfg);
        let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        sm.set_control(SmControl {
            sm_gated: true,
            ..SmControl::default()
        });
        let mut pool = test_pool();
        for now in 0..1_000 {
            let s = sm.tick(now, &mut mem, &mut pool);
            assert!(!s.active);
        }
        assert_eq!(sm.stats().instructions, 0);
    }

    #[test]
    fn unit_gating_engages_on_idle_units() {
        let cfg = GpuConfig::default();
        // heartwall barely uses the SFU; with gating on, the SFU should be
        // gated most of the time.
        let k = small_kernel();
        let mut mem = MemorySystem::new(&cfg);
        let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::TwoLevelGates);
        sm.set_control(SmControl {
            unit_gating: true,
            ..SmControl::default()
        });
        let mut pool = test_pool();
        let mut gated_cycles = 0u64;
        let mut active_cycles = 0u64;
        let mut now = 0;
        while !sm.done() && now < 2_000_000 {
            let s = sm.tick(now, &mut mem, &mut pool);
            if s.active {
                active_cycles += 1;
                if s.sfu_gated {
                    gated_cycles += 1;
                }
            }
            for r in mem.tick(now) {
                sm.on_response(&r);
            }
            now += 1;
        }
        assert!(sm.done());
        assert!(
            gated_cycles as f64 > 0.3 * active_cycles as f64,
            "SFU gated only {gated_cycles}/{active_cycles} cycles"
        );
    }

    #[test]
    fn barrier_synchronizes_cta() {
        let cfg = GpuConfig::default();
        let k = build_kernel(&benchmark("hotspot").unwrap(), &cfg, 3);
        let mut sm = Sm::new(0, &cfg, &k, SchedulerKind::Gto);
        let mut mem = MemorySystem::new(&cfg);
        let cycles = run_to_completion(&mut sm, &mut mem, 20_000_000);
        assert!(sm.done(), "barrier kernel deadlocked after {cycles} cycles");
    }
}
