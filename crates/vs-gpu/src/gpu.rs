//! Whole-GPU simulator: 16 SMs sharing a banked L2 and DRAM channels.

use crate::config::GpuConfig;
use crate::mem::{MemResponse, MemStats, MemorySystem};
use crate::sm::{SchedulerKind, Sm, SmControl, SmCycleStats, SmStats, WorkPool};
use crate::workload::Kernel;

/// Events of one whole-GPU cycle: one entry per SM.
#[derive(Debug, Clone, Default)]
pub struct GpuCycleEvents {
    /// Cycle index.
    pub cycle: u64,
    /// Per-SM events, indexed by SM id.
    pub per_sm: Vec<SmCycleStats>,
}

impl GpuCycleEvents {
    /// An empty event record, for use as a reusable [`Gpu::tick_into`]
    /// output buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The simulated GPU.
///
/// # Examples
///
/// ```
/// use vs_gpu::{Gpu, GpuConfig, SchedulerKind, all_benchmarks, build_kernel};
///
/// let config = GpuConfig::default();
/// let profile = &all_benchmarks()[2]; // heartwall
/// let kernel = build_kernel(profile, &config, 42);
/// let mut gpu = Gpu::new(&config, &kernel, SchedulerKind::Gto);
/// for _ in 0..1_000 {
///     let events = gpu.tick();
///     assert_eq!(events.per_sm.len(), 16);
/// }
/// assert!(gpu.cycle() == 1_000);
/// ```
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    sms: Vec<Sm>,
    mem: MemorySystem,
    pool: WorkPool,
    cycle: u64,
    kernel_name: String,
    /// Reusable scratch for memory responses delivered each cycle.
    resp_scratch: Vec<MemResponse>,
}

impl Gpu {
    /// Builds a GPU running `kernel` on every SM (with the kernel's per-SM
    /// iteration scaling).
    pub fn new(config: &GpuConfig, kernel: &Kernel, scheduler: SchedulerKind) -> Self {
        config.validate();
        let sms: Vec<Sm> = (0..config.n_sms)
            .map(|i| Sm::new(i, config, kernel, scheduler))
            .collect();
        // Grid size: the per-SM iteration budgets pooled together (the
        // paper's benchmarks launch far more CTAs than SMs). Each warp
        // already holds one batch.
        let total: u64 = (0..config.n_sms)
            .map(|i| u64::from(kernel.iterations_for_sm(i)) * kernel.warps_per_sm as u64)
            .sum();
        let held = (config.n_sms * kernel.warps_per_sm) as u64;
        let pool = WorkPool::new(total.saturating_sub(held));
        Gpu {
            config: config.clone(),
            sms,
            mem: MemorySystem::new(config),
            pool,
            cycle: 0,
            kernel_name: kernel.name.clone(),
            resp_scratch: Vec::new(),
        }
    }

    /// The GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Name of the kernel being executed.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of SMs.
    pub fn n_sms(&self) -> usize {
        self.sms.len()
    }

    /// Applies control inputs to one SM (effective next cycle).
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn set_sm_control(&mut self, sm: usize, control: SmControl) {
        self.sms[sm].set_control(control);
    }

    /// Reads back an SM's control inputs.
    pub fn sm_control(&self, sm: usize) -> SmControl {
        self.sms[sm].control()
    }

    /// Advances the whole GPU by one cycle and reports per-SM events.
    ///
    /// Allocates a fresh event record per call; the hot path should use
    /// [`Gpu::tick_into`] with a reusable buffer instead.
    pub fn tick(&mut self) -> GpuCycleEvents {
        let mut events = GpuCycleEvents::new();
        self.tick_into(&mut events);
        events
    }

    /// Advances the whole GPU by one cycle, writing per-SM events into the
    /// reusable `events` record (cleared and refilled; its capacity is kept).
    pub fn tick_into(&mut self, events: &mut GpuCycleEvents) {
        let now = self.cycle;
        events.cycle = now;
        events.per_sm.clear();
        for sm in &mut self.sms {
            events.per_sm.push(sm.tick(now, &mut self.mem, &mut self.pool));
        }
        self.mem.tick_into(now, &mut self.resp_scratch);
        for resp in &self.resp_scratch {
            self.sms[resp.sm].on_response(resp);
        }
        self.cycle += 1;
    }

    /// True when every SM has retired its kernel.
    pub fn done(&self) -> bool {
        self.sms.iter().all(Sm::done)
    }

    /// True when one specific SM is done.
    pub fn sm_done(&self, sm: usize) -> bool {
        self.sms[sm].done()
    }

    /// Runs until completion or `max_cycles`, discarding events. Returns the
    /// cycle count reached.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        let mut events = GpuCycleEvents::new();
        while !self.done() && self.cycle < max_cycles {
            self.tick_into(&mut events);
        }
        self.cycle
    }

    /// Per-SM lifetime statistics.
    pub fn sm_stats(&self) -> Vec<SmStats> {
        self.sms.iter().map(Sm::stats).collect()
    }

    /// Memory-subsystem statistics.
    pub fn mem_stats(&self) -> MemStats {
        self.mem.stats()
    }

    /// Total instructions retired across all SMs.
    pub fn total_instructions(&self) -> u64 {
        self.sms.iter().map(|s| s.stats().instructions).sum()
    }

    /// Kernel-body batches still waiting in the grid pool.
    pub fn pool_remaining(&self) -> u64 {
        self.pool.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{benchmark, build_kernel};

    fn quick_kernel(name: &str) -> (GpuConfig, Kernel) {
        let cfg = GpuConfig::default();
        let mut k = build_kernel(&benchmark(name).unwrap(), &cfg, 11);
        k.warps_per_sm = 8;
        k.iterations = 3;
        (cfg, k)
    }

    #[test]
    fn gpu_runs_kernel_to_completion() {
        let (cfg, k) = quick_kernel("heartwall");
        let mut gpu = Gpu::new(&cfg, &k, SchedulerKind::Gto);
        let cycles = gpu.run(5_000_000);
        assert!(gpu.done(), "stuck after {cycles} cycles");
        assert!(gpu.total_instructions() > 0);
    }

    #[test]
    fn work_pool_keeps_sms_busy_to_the_end() {
        // With a shared grid pool, every SM keeps drawing batches until the
        // pool drains, so completion times cluster tightly even for an
        // imbalanced profile — no long single-SM idle tails.
        let cfg = GpuConfig::default();
        let mut k = build_kernel(&benchmark("backprop").unwrap(), &cfg, 11);
        k.warps_per_sm = 8;
        k.iterations = 10;
        let mut gpu = Gpu::new(&cfg, &k, SchedulerKind::Gto);
        let mut first_done_cycle = None;
        while !gpu.done() && gpu.cycle() < 10_000_000 {
            gpu.tick();
            if first_done_cycle.is_none() && (0..16).any(|i| gpu.sm_done(i)) {
                first_done_cycle = Some(gpu.cycle());
            }
        }
        assert!(gpu.done());
        assert_eq!(gpu.pool_remaining(), 0);
        let first = first_done_cycle.unwrap();
        // The tail is at most ~one batch long, a small fraction of the run.
        let tail = gpu.cycle() - first;
        let frac = tail as f64 / gpu.cycle() as f64;
        assert!(frac < 0.2, "tail too long: {tail} of {}", gpu.cycle());
    }

    #[test]
    fn per_sm_controls_are_independent() {
        let (cfg, k) = quick_kernel("hotspot");
        let mut gpu = Gpu::new(&cfg, &k, SchedulerKind::Gto);
        gpu.set_sm_control(
            0,
            SmControl {
                sm_gated: true,
                ..SmControl::default()
            },
        );
        for _ in 0..1_000 {
            let e = gpu.tick();
            assert!(!e.per_sm[0].active);
        }
        assert!(gpu.sm_stats()[1].active_cycles > 0);
        assert_eq!(gpu.sm_stats()[0].active_cycles, 0);
    }

    #[test]
    fn events_expose_issue_activity() {
        let (cfg, k) = quick_kernel("blackscholes");
        let mut gpu = Gpu::new(&cfg, &k, SchedulerKind::Gto);
        let mut sp = 0u64;
        let mut sfu = 0u64;
        for _ in 0..50_000 {
            let e = gpu.tick();
            for s in &e.per_sm {
                sp += u64::from(s.issued_sp);
                sfu += u64::from(s.issued_sfu);
            }
            if gpu.done() {
                break;
            }
        }
        assert!(sp > 0, "SP instructions must issue");
        assert!(sfu > 0, "blackscholes uses the SFU");
    }

    #[test]
    fn two_level_scheduler_completes_barrier_kernels() {
        // The active-set scheduler swaps barrier-blocked warps out; it must
        // still release barriers and finish (a buggy swap policy deadlocks).
        let (cfg, k) = quick_kernel("hotspot");
        let mut gpu = Gpu::new(&cfg, &k, SchedulerKind::TwoLevelGates);
        let cycles = gpu.run(10_000_000);
        assert!(gpu.done(), "two-level scheduler deadlocked after {cycles} cycles");
    }

    #[test]
    fn two_level_scheduler_matches_gto_throughput_roughly() {
        let (cfg, k) = quick_kernel("heartwall");
        let mut gto = Gpu::new(&cfg, &k, SchedulerKind::Gto);
        let mut gates = Gpu::new(&cfg, &k, SchedulerKind::TwoLevelGates);
        let t_gto = gto.run(10_000_000) as f64;
        let t_gates = gates.run(10_000_000) as f64;
        assert!(gto.done() && gates.done());
        // Warped Gates reports negligible performance cost from GATES.
        assert!(
            t_gates / t_gto < 1.35,
            "two-level cost too high: {t_gto} vs {t_gates}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (cfg, k) = quick_kernel("srad");
        let mut a = Gpu::new(&cfg, &k, SchedulerKind::Gto);
        let mut b = Gpu::new(&cfg, &k, SchedulerKind::Gto);
        let ca = a.run(3_000_000);
        let cb = b.run(3_000_000);
        assert_eq!(ca, cb);
        assert_eq!(a.total_instructions(), b.total_instructions());
    }
}
