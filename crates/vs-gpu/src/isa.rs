//! A compact SASS-like instruction set for synthetic GPU kernels.
//!
//! The simulator does not execute real CUDA binaries (see DESIGN.md's
//! substitution table); kernels are sequences of these instructions with
//! explicit register dependences, which is everything the timing and power
//! models observe.


/// Architectural register within a warp's slice of the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of registers addressable per warp in the synthetic ISA.
    pub const COUNT: usize = 32;
}

/// Memory space targeted by a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSpace {
    /// Off-chip global memory through L1/L2/DRAM.
    Global,
    /// On-chip software-managed shared memory.
    Shared,
}

/// How a warp's 32 lanes spread their addresses for a global access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// All lanes fall in `n_lines` consecutive cache lines (1 = perfectly
    /// coalesced).
    Coalesced {
        /// Distinct lines touched (1..=32).
        n_lines: u8,
    },
    /// Lanes stride across memory, touching `n_lines` distinct lines spread
    /// over the working set.
    Strided {
        /// Distinct lines touched (1..=32).
        n_lines: u8,
        /// Stride between consecutive lanes, in lines.
        stride_lines: u32,
    },
    /// Lanes hash across the working set (graph workloads such as `bfs`).
    Random {
        /// Distinct lines touched (1..=32).
        n_lines: u8,
    },
}

impl AccessPattern {
    /// Number of memory transactions (distinct lines) this pattern costs.
    pub fn transactions(&self) -> u32 {
        let n = match *self {
            AccessPattern::Coalesced { n_lines }
            | AccessPattern::Strided { n_lines, .. }
            | AccessPattern::Random { n_lines } => n_lines,
        };
        u32::from(n.clamp(1, 32))
    }
}

/// Special-function-unit operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfuOp {
    /// Reciprocal / reciprocal square root.
    Rcp,
    /// Transcendental (sin, cos, exp, log).
    Transcendental,
}

/// One warp-level instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Opcode {
    /// Integer ALU op on the SP pipeline.
    IAlu,
    /// Single-precision floating add/mul on the SP pipeline.
    FAlu,
    /// Fused multiply-add on the SP pipeline (reads three sources).
    Ffma,
    /// Special-function op on the SFU pipeline.
    Sfu(SfuOp),
    /// Load from memory via the LSU.
    Ld(MemSpace),
    /// Store to memory via the LSU (fire-and-forget in the timing model).
    St(MemSpace),
    /// Atomic read-modify-write at the L2 (serializing).
    Atom,
    /// CTA-wide barrier.
    Bar,
    /// End of the kernel body for this warp iteration.
    Exit,
}

/// A decoded instruction with register dependences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// Operation.
    pub opcode: Opcode,
    /// Destination register, if any (None for stores/barriers).
    pub dst: Option<Reg>,
    /// Source registers (unused slots are None).
    pub srcs: [Option<Reg>; 3],
    /// Address pattern for global loads/stores; ignored otherwise.
    pub pattern: Option<AccessPattern>,
}

impl Instruction {
    /// Builds an ALU-style instruction.
    pub fn alu(opcode: Opcode, dst: Reg, srcs: &[Reg]) -> Self {
        let mut s = [None; 3];
        for (i, r) in srcs.iter().take(3).enumerate() {
            s[i] = Some(*r);
        }
        Instruction {
            opcode,
            dst: Some(dst),
            srcs: s,
            pattern: None,
        }
    }

    /// Builds a global load.
    pub fn load_global(dst: Reg, addr_src: Reg, pattern: AccessPattern) -> Self {
        Instruction {
            opcode: Opcode::Ld(MemSpace::Global),
            dst: Some(dst),
            srcs: [Some(addr_src), None, None],
            pattern: Some(pattern),
        }
    }

    /// Builds a shared-memory load.
    pub fn load_shared(dst: Reg, addr_src: Reg) -> Self {
        Instruction {
            opcode: Opcode::Ld(MemSpace::Shared),
            dst: Some(dst),
            srcs: [Some(addr_src), None, None],
            pattern: None,
        }
    }

    /// Builds a global store.
    pub fn store_global(data: Reg, addr_src: Reg, pattern: AccessPattern) -> Self {
        Instruction {
            opcode: Opcode::St(MemSpace::Global),
            dst: None,
            srcs: [Some(data), Some(addr_src), None],
            pattern: Some(pattern),
        }
    }

    /// Builds an atomic op.
    pub fn atomic(dst: Reg, addr_src: Reg) -> Self {
        Instruction {
            opcode: Opcode::Atom,
            dst: Some(dst),
            srcs: [Some(addr_src), None, None],
            pattern: Some(AccessPattern::Random { n_lines: 4 }),
        }
    }

    /// Builds a barrier.
    pub fn barrier() -> Self {
        Instruction {
            opcode: Opcode::Bar,
            dst: None,
            srcs: [None; 3],
            pattern: None,
        }
    }

    /// Builds the kernel-body terminator.
    pub fn exit() -> Self {
        Instruction {
            opcode: Opcode::Exit,
            dst: None,
            srcs: [None; 3],
            pattern: None,
        }
    }

    /// Execution-unit class this instruction issues to.
    pub fn unit(&self) -> ExecUnit {
        match self.opcode {
            Opcode::IAlu | Opcode::FAlu | Opcode::Ffma => ExecUnit::Sp,
            Opcode::Sfu(_) => ExecUnit::Sfu,
            Opcode::Ld(_) | Opcode::St(_) | Opcode::Atom => ExecUnit::Lsu,
            Opcode::Bar | Opcode::Exit => ExecUnit::None,
        }
    }
}

/// Execution-unit classes inside an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecUnit {
    /// Shader cores (two 16-wide blocks).
    Sp,
    /// Special-function units.
    Sfu,
    /// Load/store units.
    Lsu,
    /// No unit (control instructions).
    None,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_classification() {
        assert_eq!(Instruction::alu(Opcode::Ffma, Reg(0), &[Reg(1), Reg(2), Reg(3)]).unit(), ExecUnit::Sp);
        assert_eq!(
            Instruction::alu(Opcode::Sfu(SfuOp::Rcp), Reg(0), &[Reg(1)]).unit(),
            ExecUnit::Sfu
        );
        assert_eq!(
            Instruction::load_global(Reg(0), Reg(1), AccessPattern::Coalesced { n_lines: 1 }).unit(),
            ExecUnit::Lsu
        );
        assert_eq!(Instruction::barrier().unit(), ExecUnit::None);
    }

    #[test]
    fn pattern_transaction_counts() {
        assert_eq!(AccessPattern::Coalesced { n_lines: 1 }.transactions(), 1);
        assert_eq!(AccessPattern::Random { n_lines: 32 }.transactions(), 32);
        assert_eq!(AccessPattern::Strided { n_lines: 0, stride_lines: 1 }.transactions(), 1);
        assert_eq!(AccessPattern::Random { n_lines: 40 }.transactions(), 32);
    }

    #[test]
    fn alu_sources_are_truncated() {
        let i = Instruction::alu(Opcode::IAlu, Reg(0), &[Reg(1), Reg(2), Reg(3)]);
        assert_eq!(i.srcs, [Some(Reg(1)), Some(Reg(2)), Some(Reg(3))]);
    }
}
