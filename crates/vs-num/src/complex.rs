//! Minimal complex-number arithmetic used by the AC (frequency-domain)
//! analysis.
//!
//! The workspace deliberately avoids pulling in a numerics crate for a type
//! this small; the implementation below covers exactly the operations the
//! modified-nodal-analysis solver needs (field arithmetic, conjugation,
//! magnitude and phase).

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use vs_num::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(magnitude: f64, phase_rad: f64) -> Self {
        Complex::new(magnitude * phase_rad.cos(), magnitude * phase_rad.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (modulus), computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::abs`] when only relative
    /// comparisons are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `1.0/0.0`
    /// semantics for `f64`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

/// Scalar abstraction shared by the real (transient/DC) and complex (AC)
/// linear solvers.
///
/// The trait is sealed in spirit: only `f64` and [`Complex`] implement it and
/// downstream crates are not expected to add more.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + fmt::Debug
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection.
    fn magnitude(self) -> f64;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex {
    #[inline]
    fn zero() -> Self {
        Complex::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex::ONE
    }
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        let i2 = Complex::I * Complex::I;
        assert!((i2.re + 1.0).abs() < 1e-15 && i2.im.abs() < 1e-15);
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-0.5, 2.0);
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn recip_of_zero_is_not_finite() {
        assert!(!Complex::ZERO.recip().is_finite());
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
