//! Dense LU factorization with partial pivoting, generic over the circuit
//! scalar ([`f64`] for DC/transient analysis, [`Complex`] for AC analysis).
//!
//! Power-delivery-network matrices in this workspace are small (tens of
//! unknowns) and dense-ish after companion-model stamping, so a dense
//! factorization is both simple and fast. The transient engine factors the
//! system matrix **once** per topology/timestep change and then performs only
//! O(n^2) forward/backward substitutions per step, which is what makes
//! million-cycle co-simulation affordable.
//!
//! [`Complex`]: crate::Complex

use crate::complex::Scalar;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    n_rows: usize,
    n_cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates an `n_rows x n_cols` matrix of zeros.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Matrix {
            n_rows,
            n_cols,
            data: vec![T::zero(); n_rows * n_cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from a row-major nested array, panicking if rows are
    /// ragged.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == n_cols),
            "ragged rows in Matrix::from_rows"
        );
        Matrix {
            n_rows,
            n_cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Fills every entry with zero, preserving the shape.
    pub fn clear(&mut self) {
        self.data.fill(T::zero());
    }

    /// Reshapes to `n_rows x n_cols` and fills with zeros, reusing the
    /// existing allocation when it is large enough.
    pub fn resize_zeroed(&mut self, n_rows: usize, n_cols: usize) {
        self.n_rows = n_rows;
        self.n_cols = n_cols;
        self.data.clear();
        self.data.resize(n_rows * n_cols, T::zero());
    }

    /// Copies `src` into `self`, reusing the existing allocation when it is
    /// large enough.
    pub fn copy_from(&mut self, src: &Matrix<T>) {
        self.n_rows = src.n_rows;
        self.n_cols = src.n_cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.n_rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch in mul_vec");
        let mut y = vec![T::zero(); self.n_rows];
        for (i, out) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n_cols..(i + 1) * self.n_cols];
            let mut acc = T::zero();
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            *out = acc;
        }
        y
    }
}

impl<T: Scalar> Matrix<T> {
    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.n_cols, rhs.n_rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.n_rows, rhs.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.n_cols {
                let aik = self[(i, k)];
                if aik == T::zero() {
                    continue;
                }
                for j in 0..rhs.n_cols {
                    let add = aik * rhs[(k, j)];
                    out[(i, j)] += add;
                }
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.n_rows, self.n_cols), (rhs.n_rows, rhs.n_cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
        out
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.n_rows, self.n_cols), (rhs.n_rows, rhs.n_cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *a -= *b;
        }
        out
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: T) -> Matrix<T> {
        let mut out = self.clone();
        for a in out.data.iter_mut() {
            *a = *a * s;
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.n_cols, self.n_rows);
        for i in 0..self.n_rows {
            for j in 0..self.n_cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.magnitude()).fold(0.0, f64::max)
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n_rows)
            .map(|i| {
                (0..self.n_cols)
                    .map(|j| self[(i, j)].magnitude())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

impl<T: Scalar> Default for Matrix<T> {
    /// An empty `0 x 0` matrix that allocates nothing.
    fn default() -> Self {
        Matrix { n_rows: 0, n_cols: 0, data: Vec::new() }
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        &self.data[r * self.n_cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        &mut self.data[r * self.n_cols + c]
    }
}

/// Error returned when a matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Pivot column where elimination failed.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is singular to working precision at pivot column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularMatrixError {}

/// An LU factorization `P*A = L*U` with partial pivoting.
///
/// Factor once with [`LuFactors::factor`], then reuse
/// [`LuFactors::solve_in_place`] for many right-hand sides. When the same
/// system is factored repeatedly (e.g. on every topology or timestep change
/// of a transient simulation), [`LuFactors::refactor`] reuses all internal
/// storage so no heap allocation happens after the first factorization.
///
/// Circuit matrices stay sparse even after companion-model stamping, so the
/// factorization records the per-row nonzero columns of `L` and `U` and the
/// substitutions skip exactly the zero entries. The skipped terms are exact
/// zeros, so the accumulation order of the surviving terms — and hence the
/// floating-point result — is unchanged.
#[derive(Debug, Clone)]
pub struct LuFactors<T> {
    lu: Matrix<T>,
    pivots: Vec<usize>,
    /// Strictly-lower nonzero columns of row `i`, ascending, in
    /// `lower_cols[lower_start[i]..lower_start[i + 1]]`.
    lower_cols: Vec<u32>,
    lower_start: Vec<u32>,
    /// Strictly-upper nonzero columns, same layout.
    upper_cols: Vec<u32>,
    upper_start: Vec<u32>,
    /// FNV-1a hash of the symbolic structure (dimension, pivot sequence and
    /// the recorded L/U sparsity patterns), refreshed on every refactor.
    structure_key: u64,
}

impl<T: Scalar> Default for LuFactors<T> {
    /// An empty (`0 x 0`) factorization that allocates nothing; fill it with
    /// [`LuFactors::refactor`] before solving.
    fn default() -> Self {
        LuFactors {
            lu: Matrix::default(),
            pivots: Vec::new(),
            lower_cols: Vec::new(),
            lower_start: Vec::new(),
            upper_cols: Vec::new(),
            upper_start: Vec::new(),
            structure_key: 0,
        }
    }
}

impl<T: Scalar> LuFactors<T> {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot smaller than `1e-300` in
    /// magnitude is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix<T>) -> Result<Self, SingularMatrixError> {
        let mut out = Self::default();
        out.refactor(a)?;
        Ok(out)
    }

    /// Re-factors `a` in place, reusing every internal buffer.
    ///
    /// On error the factors are left in an unusable intermediate state; a
    /// subsequent successful `refactor` restores full consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot smaller than `1e-300` in
    /// magnitude is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn refactor(&mut self, a: &Matrix<T>) -> Result<(), SingularMatrixError> {
        assert_eq!(a.n_rows(), a.n_cols(), "LU requires a square matrix");
        let n = a.n_rows();
        self.lu.copy_from(a);
        let lu = &mut self.lu;
        let pivots = &mut self.pivots;
        pivots.clear();
        for col in 0..n {
            // Partial pivoting: pick the largest remaining entry in this column.
            let mut best_row = col;
            let mut best_mag = lu[(col, col)].magnitude();
            for row in (col + 1)..n {
                let mag = lu[(row, col)].magnitude();
                if mag > best_mag {
                    best_mag = mag;
                    best_row = row;
                }
            }
            if best_mag < 1e-300 || !best_mag.is_finite() {
                return Err(SingularMatrixError { column: col });
            }
            pivots.push(best_row);
            if best_row != col {
                for c in 0..n {
                    let tmp = lu[(col, c)];
                    lu[(col, c)] = lu[(best_row, c)];
                    lu[(best_row, c)] = tmp;
                }
            }
            let pivot = lu[(col, col)];
            for row in (col + 1)..n {
                let factor = lu[(row, col)] / pivot;
                lu[(row, col)] = factor;
                if factor != T::zero() {
                    for c in (col + 1)..n {
                        let sub = factor * lu[(col, c)];
                        lu[(row, c)] -= sub;
                    }
                }
            }
        }
        self.rebuild_pattern();
        Ok(())
    }

    /// Records the per-row nonzero columns of the freshly computed factors.
    fn rebuild_pattern(&mut self) {
        let n = self.lu.n_rows();
        self.lower_cols.clear();
        self.lower_start.clear();
        self.upper_cols.clear();
        self.upper_start.clear();
        self.lower_start.push(0);
        self.upper_start.push(0);
        for i in 0..n {
            let row = self.lu.row(i);
            for (j, v) in row.iter().enumerate().take(i) {
                if *v != T::zero() {
                    self.lower_cols.push(j as u32);
                }
            }
            self.lower_start.push(self.lower_cols.len() as u32);
            for (j, v) in row.iter().enumerate().skip(i + 1) {
                if *v != T::zero() {
                    self.upper_cols.push(j as u32);
                }
            }
            self.upper_start.push(self.upper_cols.len() as u32);
        }
        self.structure_key = self.compute_structure_key();
    }

    /// FNV-1a over the symbolic structure; cached so per-step lane grouping
    /// costs one integer compare instead of an O(nnz) sweep.
    fn compute_structure_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |w: u64| {
            for byte in w.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        eat(self.lu.n_rows() as u64);
        for &p in &self.pivots {
            eat(p as u64);
        }
        for arr in [
            &self.lower_cols,
            &self.lower_start,
            &self.upper_cols,
            &self.upper_start,
        ] {
            eat(arr.len() as u64);
            for &c in arr.iter() {
                eat(u64::from(c));
            }
        }
        h
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.n_rows()
    }

    /// Solves `A*x = b` in place: `b` holds the solution on return.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve_in_place(&self, b: &mut [T]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch in solve_in_place");
        // Apply the row permutation.
        for (col, &piv) in self.pivots.iter().enumerate() {
            if piv != col {
                b.swap(col, piv);
            }
        }
        // Forward substitution with unit-lower-triangular L, visiting only
        // the recorded nonzero columns (ascending, so the accumulation order
        // matches a dense sweep with the zero terms dropped).
        for i in 1..n {
            let row = self.lu.row(i);
            let mut acc = b[i];
            let s = self.lower_start[i] as usize;
            let e = self.lower_start[i + 1] as usize;
            for &j in &self.lower_cols[s..e] {
                acc -= row[j as usize] * b[j as usize];
            }
            b[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = b[i];
            let s = self.upper_start[i] as usize;
            let e = self.upper_start[i + 1] as usize;
            for &j in &self.upper_cols[s..e] {
                acc -= row[j as usize] * b[j as usize];
            }
            b[i] = acc / row[i];
        }
    }

    /// Solves `A*x = b` for `n_lanes` right-hand sides held in one
    /// structure-of-arrays buffer, all sharing this factorization.
    ///
    /// `soa` is interleaved index-major: the `n_lanes` values of unknown `i`
    /// are contiguous at `soa[i * n_lanes..(i + 1) * n_lanes]`, so the inner
    /// lane loops are unit-stride. Per lane, the arithmetic — permutation
    /// swaps, forward/backward substitution over the recorded nonzero
    /// columns, final pivot division — runs in exactly the order of
    /// [`LuFactors::solve_in_place`], so each lane's result is bit-identical
    /// to an independent scalar solve; the lanes only amortize the factor-row
    /// loads and loop bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `n_lanes == 0` or `soa.len() != dim * n_lanes`.
    pub fn solve_multi_in_place(&self, soa: &mut [T], n_lanes: usize) {
        let n = self.dim();
        assert!(n_lanes > 0, "solve_multi_in_place needs at least one lane");
        assert_eq!(
            soa.len(),
            n * n_lanes,
            "dimension mismatch in solve_multi_in_place"
        );
        // The common lane counts get monomorphized kernels whose inner lane
        // loops have a compile-time trip count: the lane block lives in
        // registers across a row's nonzeros instead of round-tripping memory
        // per term, which is what makes small batches (especially M = 2)
        // cheaper per lane than the scalar kernel.
        match n_lanes {
            1 => self.solve_in_place(soa), // degenerates to the scalar kernel
            2 => self.solve_multi_fixed::<2>(soa),
            4 => self.solve_multi_fixed::<4>(soa),
            8 => self.solve_multi_fixed::<8>(soa),
            _ => self.solve_multi_dyn(soa, n_lanes),
        }
    }

    /// [`LuFactors::solve_multi_in_place`] for a compile-time lane count.
    /// Per lane the op order is exactly the scalar kernel's; lanes are
    /// independent, so blocking them into a register array changes no
    /// floating-point result.
    fn solve_multi_fixed<const M: usize>(&self, soa: &mut [T]) {
        let n = self.dim();
        for (col, &piv) in self.pivots.iter().enumerate() {
            if piv != col {
                for l in 0..M {
                    soa.swap(col * M + l, piv * M + l);
                }
            }
        }
        for i in 1..n {
            let row = self.lu.row(i);
            let s = self.lower_start[i] as usize;
            let e = self.lower_start[i + 1] as usize;
            let mut acc: [T; M] =
                soa[i * M..(i + 1) * M].try_into().expect("lane block");
            for &j in &self.lower_cols[s..e] {
                let j = j as usize;
                let c = row[j];
                let bj: [T; M] = soa[j * M..(j + 1) * M].try_into().expect("lane block");
                for l in 0..M {
                    acc[l] -= c * bj[l];
                }
            }
            soa[i * M..(i + 1) * M].copy_from_slice(&acc);
        }
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let s = self.upper_start[i] as usize;
            let e = self.upper_start[i + 1] as usize;
            let mut acc: [T; M] =
                soa[i * M..(i + 1) * M].try_into().expect("lane block");
            for &j in &self.upper_cols[s..e] {
                let j = j as usize;
                let c = row[j];
                let bj: [T; M] = soa[j * M..(j + 1) * M].try_into().expect("lane block");
                for l in 0..M {
                    acc[l] -= c * bj[l];
                }
            }
            let d = row[i];
            for x in &mut acc {
                *x = *x / d;
            }
            soa[i * M..(i + 1) * M].copy_from_slice(&acc);
        }
    }

    /// [`LuFactors::solve_multi_in_place`] for an arbitrary lane count.
    fn solve_multi_dyn(&self, soa: &mut [T], n_lanes: usize) {
        let n = self.dim();
        for (col, &piv) in self.pivots.iter().enumerate() {
            if piv != col {
                for l in 0..n_lanes {
                    soa.swap(col * n_lanes + l, piv * n_lanes + l);
                }
            }
        }
        for i in 1..n {
            let row = self.lu.row(i);
            let s = self.lower_start[i] as usize;
            let e = self.lower_start[i + 1] as usize;
            // Rows j < i are finished; split keeps the borrows disjoint.
            let (done, rest) = soa.split_at_mut(i * n_lanes);
            let bi = &mut rest[..n_lanes];
            for &j in &self.lower_cols[s..e] {
                let c = row[j as usize];
                let bj = &done[j as usize * n_lanes..(j as usize + 1) * n_lanes];
                for (x, &y) in bi.iter_mut().zip(bj) {
                    *x -= c * y;
                }
            }
        }
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let s = self.upper_start[i] as usize;
            let e = self.upper_start[i + 1] as usize;
            // Rows j > i are finished here; they live above the split.
            let (head, done) = soa.split_at_mut((i + 1) * n_lanes);
            let bi = &mut head[i * n_lanes..];
            for &j in &self.upper_cols[s..e] {
                let c = row[j as usize];
                let off = (j as usize - i - 1) * n_lanes;
                let bj = &done[off..off + n_lanes];
                for (x, &y) in bi.iter_mut().zip(bj) {
                    *x -= c * y;
                }
            }
            let d = row[i];
            for x in bi.iter_mut() {
                *x = *x / d;
            }
        }
    }

    /// Solves one SoA buffer of right-hand sides where every lane has its
    /// **own numeric factorization** but all lanes share one symbolic
    /// structure (identical pivot sequence and L/U sparsity patterns —
    /// see [`LuFactors::same_structure`]).
    ///
    /// `soa` uses the same interleaved index-major layout as
    /// [`LuFactors::solve_multi_in_place`], with `factors.len()` lanes. Lane
    /// `l` is solved against `factors[l]`; per lane the operation sequence is
    /// exactly the scalar kernel's, so results are bit-identical to
    /// independent [`LuFactors::solve_in_place`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty or `soa.len() != dim * factors.len()`.
    /// Debug builds also assert the shared-structure precondition.
    pub fn solve_lanes_in_place(factors: &[&Self], soa: &mut [T]) {
        let m = factors.len();
        assert!(m > 0, "solve_lanes_in_place needs at least one lane");
        let lead = factors[0];
        let n = lead.dim();
        assert_eq!(
            soa.len(),
            n * m,
            "dimension mismatch in solve_lanes_in_place"
        );
        debug_assert!(
            factors.iter().all(|f| lead.same_structure(f)),
            "solve_lanes_in_place requires a shared symbolic structure"
        );
        for (col, &piv) in lead.pivots.iter().enumerate() {
            if piv != col {
                for l in 0..m {
                    soa.swap(col * m + l, piv * m + l);
                }
            }
        }
        for i in 1..n {
            let s = lead.lower_start[i] as usize;
            let e = lead.lower_start[i + 1] as usize;
            let (done, rest) = soa.split_at_mut(i * m);
            let bi = &mut rest[..m];
            for &j in &lead.lower_cols[s..e] {
                let j = j as usize;
                let bj = &done[j * m..(j + 1) * m];
                for (l, x) in bi.iter_mut().enumerate() {
                    *x -= factors[l].lu.row(i)[j] * bj[l];
                }
            }
        }
        for i in (0..n).rev() {
            let s = lead.upper_start[i] as usize;
            let e = lead.upper_start[i + 1] as usize;
            let (head, done) = soa.split_at_mut((i + 1) * m);
            let bi = &mut head[i * m..];
            for &j in &lead.upper_cols[s..e] {
                let j = j as usize;
                let off = (j - i - 1) * m;
                let bj = &done[off..off + m];
                for (l, x) in bi.iter_mut().enumerate() {
                    *x -= factors[l].lu.row(i)[j] * bj[l];
                }
            }
            for (l, x) in bi.iter_mut().enumerate() {
                *x = *x / factors[l].lu.row(i)[i];
            }
        }
    }

    /// Cached FNV-1a key of the symbolic structure (dimension, pivots,
    /// sparsity patterns). Two factorizations with equal keys are grouped
    /// into one multi-lane solve; [`LuFactors::same_structure`] is the exact
    /// (collision-free) check used in debug assertions.
    pub fn structure_key(&self) -> u64 {
        self.structure_key
    }

    /// Exact comparison of the symbolic structure: dimension, pivot
    /// sequence, and the recorded L/U nonzero patterns.
    pub fn same_structure(&self, other: &Self) -> bool {
        self.lu.n_rows() == other.lu.n_rows()
            && self.pivots == other.pivots
            && self.lower_cols == other.lower_cols
            && self.lower_start == other.lower_start
            && self.upper_cols == other.upper_cols
            && self.upper_start == other.upper_start
    }

    /// Convenience wrapper returning the solution as a new vector.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Computes the matrix inverse column by column.
    pub fn inverse(&self) -> Matrix<T> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut col = vec![T::zero(); n];
        for j in 0..n {
            col.fill(T::zero());
            col[j] = T::one();
            self.solve_in_place(&mut col);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

impl LuFactors<f64> {
    /// Bitwise equality of two real factorizations: same structure and every
    /// stored factor entry identical down to the sign of zero. Lanes whose
    /// factors pass this check can share one representative factorization in
    /// a multi-lane solve without perturbing any lane's result bits.
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.same_structure(other)
            && (0..self.lu.n_rows()).all(|i| {
                self.lu
                    .row(i)
                    .iter()
                    .zip(other.lu.row(i))
                    .all(|(a, b)| a.to_bits() == b.to_bits())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn identity_solve_returns_rhs() {
        let a: Matrix<f64> = Matrix::identity(4);
        let lu = LuFactors::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.5, 0.25];
        assert_eq!(lu.solve(&b), b);
    }

    #[test]
    fn solves_small_real_system() {
        // A = [[2,1],[1,3]], b = [3,5] => x = [4/5, 7/5]
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(LuFactors::factor(&a).is_err());
    }

    #[test]
    fn complex_system_solution() {
        // (1+i) x = 2 => x = 1-i
        let mut a = Matrix::zeros(1, 1);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&[Complex::from_re(2.0)]);
        assert!((x[0] - Complex::new(1.0, -1.0)).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_matches_manual_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn refactor_reuses_storage_and_matches_fresh_factor() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b4 = Matrix::from_rows(&[
            vec![4.0, 0.0, 1.0, 0.0],
            vec![0.0, 3.0, 0.0, 0.0],
            vec![1.0, 0.0, 5.0, 2.0],
            vec![0.0, 0.0, 2.0, 6.0],
        ]);
        // Refactoring across a dimension change must behave exactly like a
        // fresh factorization.
        let mut lu = LuFactors::factor(&a).unwrap();
        lu.refactor(&b4).unwrap();
        let fresh = LuFactors::factor(&b4).unwrap();
        let rhs = [1.0, -2.0, 3.0, 0.5];
        let mut x_reused = rhs;
        let mut x_fresh = rhs;
        lu.solve_in_place(&mut x_reused);
        fresh.solve_in_place(&mut x_fresh);
        assert_eq!(x_reused, x_fresh);
        // A refactor that fails leaves the struct usable after a later
        // successful refactor.
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(lu.refactor(&singular).is_err());
        lu.refactor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn sparse_pattern_solve_matches_dense_residual() {
        // A banded (sparse) diagonally dominant system: the pattern-based
        // substitutions must reproduce the exact solution of the full sweep.
        let n = 16;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 4.0 + i as f64 * 0.125;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -0.5;
            }
            if i + 5 < n {
                a[(i, i + 5)] = 0.25;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 7.5).collect();
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&b);
        let r = a.mul_vec(&x);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }

    /// The banded diagonally dominant system used by the sparse-pattern test,
    /// optionally value-perturbed without changing the nonzero structure or
    /// the pivot choices.
    fn banded_system(n: usize, perturb: f64) -> Matrix<f64> {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 4.0 + i as f64 * 0.125 + perturb;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0 - 0.25 * perturb;
                a[(i + 1, i)] = -0.5 + 0.125 * perturb;
            }
            if i + 5 < n {
                a[(i, i + 5)] = 0.25 + 0.0625 * perturb;
            }
        }
        a
    }

    fn lane_rhs(n: usize, lane: u64) -> Vec<f64> {
        let mut seed = 0x243f_6a88_85a3_08d3u64 ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        (0..n).map(|_| next()).collect()
    }

    #[test]
    fn multi_lane_solve_is_bit_identical_to_scalar() {
        let n = 16;
        let a = banded_system(n, 0.0);
        let lu = LuFactors::factor(&a).unwrap();
        for n_lanes in [1usize, 2, 3, 4, 8] {
            let rhs: Vec<Vec<f64>> = (0..n_lanes).map(|l| lane_rhs(n, l as u64)).collect();
            // Interleave index-major, solve batched.
            let mut soa = vec![0.0f64; n * n_lanes];
            for (l, b) in rhs.iter().enumerate() {
                for i in 0..n {
                    soa[i * n_lanes + l] = b[i];
                }
            }
            lu.solve_multi_in_place(&mut soa, n_lanes);
            // Every lane must match an independent scalar solve bit-for-bit.
            for (l, b) in rhs.iter().enumerate() {
                let mut x = b.clone();
                lu.solve_in_place(&mut x);
                for i in 0..n {
                    assert_eq!(
                        soa[i * n_lanes + l].to_bits(),
                        x[i].to_bits(),
                        "lane {l} of {n_lanes} diverged at row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_lane_factor_solve_is_bit_identical_to_scalar() {
        let n = 16;
        let n_lanes = 4;
        // Parameter-variant systems: same sparsity and pivots, different
        // numeric values per lane.
        let lus: Vec<LuFactors<f64>> = (0..n_lanes)
            .map(|l| LuFactors::factor(&banded_system(n, 0.03 * l as f64)).unwrap())
            .collect();
        let lead_key = lus[0].structure_key();
        for lu in &lus {
            assert_eq!(lu.structure_key(), lead_key);
            assert!(lus[0].same_structure(lu));
        }
        assert!(lus[0].bitwise_eq(&lus[0]));
        assert!(!lus[0].bitwise_eq(&lus[1]));

        let rhs: Vec<Vec<f64>> = (0..n_lanes).map(|l| lane_rhs(n, 100 + l as u64)).collect();
        let mut soa = vec![0.0f64; n * n_lanes];
        for (l, b) in rhs.iter().enumerate() {
            for i in 0..n {
                soa[i * n_lanes + l] = b[i];
            }
        }
        let refs: Vec<&LuFactors<f64>> = lus.iter().collect();
        LuFactors::solve_lanes_in_place(&refs, &mut soa);
        for (l, b) in rhs.iter().enumerate() {
            let mut x = b.clone();
            lus[l].solve_in_place(&mut x);
            for i in 0..n {
                assert_eq!(
                    soa[i * n_lanes + l].to_bits(),
                    x[i].to_bits(),
                    "lane {l} diverged at row {i}"
                );
            }
        }
    }

    #[test]
    fn structure_key_distinguishes_different_patterns() {
        let banded = LuFactors::factor(&banded_system(16, 0.0)).unwrap();
        let dense = {
            let mut a = banded_system(16, 0.0);
            a[(15, 0)] = 0.125; // extra fill changes the symbolic structure
            LuFactors::factor(&a).unwrap()
        };
        assert_ne!(banded.structure_key(), dense.structure_key());
        assert!(!banded.same_structure(&dense));
    }

    #[test]
    fn random_roundtrip_via_residual() {
        // Deterministic pseudo-random fill; checks ||Ax - b|| is tiny.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant => nonsingular
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&b);
        let r = a.mul_vec(&x);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }
}
