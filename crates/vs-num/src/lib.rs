//! # vs-num — dense numerics shared across the voltage-stacking workspace
//!
//! Small, dependency-free numerical kernels used by both the circuit solver
//! (`vs-circuit`) and the control-theory toolkit (`vs-control`):
//!
//! * [`Complex`] arithmetic and the [`Scalar`] abstraction over `f64` /
//!   [`Complex`],
//! * a dense [`Matrix`] with LU factorization ([`LuFactors`]) and the usual
//!   algebra ([`Matrix::matmul`], [`Matrix::transpose`], norms),
//! * real-matrix eigenvalues via Hessenberg reduction + shifted QR
//!   ([`eigenvalues`], [`spectral_radius`]),
//! * the matrix exponential by scaling-and-squaring with a Padé approximant
//!   ([`expm`]).
//!
//! All matrices in this workspace are small (a handful to a few dozen rows),
//! so the implementations favour clarity and robustness over asymptotics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod complex;
mod eig;
mod expm;
mod linalg;
mod rng;

pub use complex::{Complex, Scalar};
pub use eig::{eigenvalues, spectral_radius};
pub use expm::expm;
pub use linalg::{LuFactors, Matrix, SingularMatrixError};
pub use rng::Rng;
