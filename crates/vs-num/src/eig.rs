//! Eigenvalues of real square matrices via complex shifted-QR iteration on a
//! Hessenberg reduction.
//!
//! The control toolkit needs eigenvalues for two things: testing continuous
//! stability (real parts) and discrete stability (spectral radius of the
//! discretized closed loop, paper eq. (8)). A single-shift QR iteration in
//! complex arithmetic with Wilkinson shifts is compact and, for the tiny
//! matrices involved (n <= 10), entirely adequate.

use crate::complex::Complex;
use crate::linalg::Matrix;

/// Computes all eigenvalues of a real square matrix, in descending order of
/// magnitude.
///
/// # Panics
///
/// Panics if `a` is not square, contains non-finite entries, or the QR
/// iteration fails to converge (which does not occur for finite inputs in
/// practice).
pub fn eigenvalues(a: &Matrix<f64>) -> Vec<Complex> {
    assert_eq!(a.n_rows(), a.n_cols(), "eigenvalues requires a square matrix");
    assert!(a.max_abs().is_finite(), "eigenvalues requires finite entries");
    let n = a.n_rows();
    if n == 0 {
        return Vec::new();
    }
    // Promote to complex.
    let mut h = Matrix::<Complex>::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            h[(i, j)] = Complex::from_re(a[(i, j)]);
        }
    }
    hessenberg_in_place(&mut h);
    let mut eigs = qr_iterate(h);
    eigs.sort_by(|x, y| y.abs().partial_cmp(&x.abs()).expect("finite eigenvalues"));
    eigs
}

/// Largest eigenvalue magnitude of a real square matrix.
///
/// # Panics
///
/// Panics under the same conditions as [`eigenvalues`].
pub fn spectral_radius(a: &Matrix<f64>) -> f64 {
    eigenvalues(a).first().map_or(0.0, |e| e.abs())
}

/// Complex Givens rotation `G = [[c, s], [-conj(s), c]]` (c real) such that
/// `G * [a; b] = [r; 0]`.
fn givens(a: Complex, b: Complex) -> (f64, Complex) {
    let na = a.abs();
    let nb = b.abs();
    if nb == 0.0 {
        return (1.0, Complex::ZERO);
    }
    if na == 0.0 {
        return (0.0, Complex::ONE);
    }
    let r = (na * na + nb * nb).sqrt();
    let c = na / r;
    // s = c * conj(b) / conj(a) scaled so that c*a + s*b = e^{i arg a} * r.
    let s = (a / na) * b.conj() / r;
    (c, s)
}

/// Reduces a complex matrix to upper Hessenberg form in place using Givens
/// similarity transforms.
fn hessenberg_in_place(h: &mut Matrix<Complex>) {
    let n = h.n_rows();
    for j in 0..n.saturating_sub(2) {
        for i in (j + 2)..n {
            if h[(i, j)].abs() == 0.0 {
                continue;
            }
            let (c, s) = givens(h[(j + 1, j)], h[(i, j)]);
            apply_givens_rows(h, j + 1, i, c, s, j, n);
            apply_givens_cols(h, j + 1, i, c, s, 0, n);
        }
    }
}

/// Left-multiplies rows `p`,`q` (columns `col_lo..col_hi`) by the Givens
/// rotation.
fn apply_givens_rows(
    h: &mut Matrix<Complex>,
    p: usize,
    q: usize,
    c: f64,
    s: Complex,
    col_lo: usize,
    col_hi: usize,
) {
    for col in col_lo..col_hi {
        let hp = h[(p, col)];
        let hq = h[(q, col)];
        h[(p, col)] = hp * c + s * hq;
        h[(q, col)] = hq * c - s.conj() * hp;
    }
}

/// Right-multiplies columns `p`,`q` (rows `row_lo..row_hi`) by the conjugate
/// transpose of the rotation (completing the similarity transform).
fn apply_givens_cols(
    h: &mut Matrix<Complex>,
    p: usize,
    q: usize,
    c: f64,
    s: Complex,
    row_lo: usize,
    row_hi: usize,
) {
    for row in row_lo..row_hi {
        let hp = h[(row, p)];
        let hq = h[(row, q)];
        h[(row, p)] = hp * c + hq * s.conj();
        h[(row, q)] = hq * c - hp * s;
    }
}

/// Shifted-QR iteration on an upper Hessenberg complex matrix; returns the
/// eigenvalues.
fn qr_iterate(mut h: Matrix<Complex>) -> Vec<Complex> {
    let n = h.n_rows();
    let mut eigs = Vec::with_capacity(n);
    let mut m = n; // active block is 0..m
    let mut iterations = 0usize;
    let max_iterations = 200 * n.max(1);
    let scale = h.max_abs().max(1.0);

    while m > 0 {
        if m == 1 {
            eigs.push(h[(0, 0)]);
            m = 0;
            continue;
        }
        // Deflate if the last subdiagonal of the active block is negligible.
        let sub = h[(m - 1, m - 2)].abs();
        let local = h[(m - 1, m - 1)].abs() + h[(m - 2, m - 2)].abs();
        if sub <= 1e-14 * (local + scale * 1e-3) {
            eigs.push(h[(m - 1, m - 1)]);
            m -= 1;
            continue;
        }
        if m == 2 && iterations > max_iterations / 2 {
            // Directly solve the trailing 2x2 if convergence is slow.
            let (l1, l2) = eig2(h[(0, 0)], h[(0, 1)], h[(1, 0)], h[(1, 1)]);
            eigs.push(l1);
            eigs.push(l2);
            m = 0;
            continue;
        }
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "QR iteration failed to converge"
        );

        // Wilkinson shift from the trailing 2x2 of the active block.
        let (l1, l2) = eig2(
            h[(m - 2, m - 2)],
            h[(m - 2, m - 1)],
            h[(m - 1, m - 2)],
            h[(m - 1, m - 1)],
        );
        let target = h[(m - 1, m - 1)];
        let mu = if (l1 - target).abs() <= (l2 - target).abs() {
            l1
        } else {
            l2
        };

        for i in 0..m {
            h[(i, i)] -= mu;
        }
        // QR by Givens on the Hessenberg band, then RQ.
        let mut rots = Vec::with_capacity(m - 1);
        for k in 0..m - 1 {
            let (c, s) = givens(h[(k, k)], h[(k + 1, k)]);
            apply_givens_rows(&mut h, k, k + 1, c, s, k, m);
            rots.push((c, s));
        }
        for (k, &(c, s)) in rots.iter().enumerate() {
            let hi = (k + 2).min(m);
            apply_givens_cols(&mut h, k, k + 1, c, s, 0, hi);
        }
        for i in 0..m {
            h[(i, i)] += mu;
        }
    }
    eigs
}

/// Eigenvalues of a complex 2x2 matrix `[[a, b], [c, d]]`.
fn eig2(a: Complex, b: Complex, c: Complex, d: Complex) -> (Complex, Complex) {
    let tr_half = (a + d) * 0.5;
    let det = a * d - b * c;
    let disc = tr_half * tr_half - det;
    let root = csqrt(disc);
    (tr_half + root, tr_half - root)
}

/// Principal complex square root.
fn csqrt(z: Complex) -> Complex {
    Complex::from_polar(z.abs().sqrt(), z.arg() / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_res(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn empty_and_scalar() {
        assert!(eigenvalues(&Matrix::zeros(0, 0)).is_empty());
        let mut m = Matrix::zeros(1, 1);
        m[(0, 0)] = 3.5;
        let e = eigenvalues(&m);
        assert!((e[0] - Complex::from_re(3.5)).abs() < 1e-14);
    }

    #[test]
    fn triangular_eigs_are_diagonal() {
        let a = Matrix::from_rows(&[
            vec![3.0, 1.0, -2.0],
            vec![0.0, -1.0, 5.0],
            vec![0.0, 0.0, 0.5],
        ]);
        let eigs = eigenvalues(&a);
        let res = sorted_res(eigs.iter().map(|e| e.re).collect());
        assert!((res[0] + 1.0).abs() < 1e-10);
        assert!((res[1] - 0.5).abs() < 1e-10);
        assert!((res[2] - 3.0).abs() < 1e-10);
        assert!(eigs.iter().all(|e| e.im.abs() < 1e-10));
    }

    #[test]
    fn rotation_matrix_has_unit_complex_pair() {
        let t = 0.9f64;
        let a = Matrix::from_rows(&[vec![t.cos(), -t.sin()], vec![t.sin(), t.cos()]]);
        let eigs = eigenvalues(&a);
        assert_eq!(eigs.len(), 2);
        for e in &eigs {
            assert!((e.abs() - 1.0).abs() < 1e-10);
        }
        assert!((eigs[0].im.abs() - t.sin()).abs() < 1e-10);
    }

    #[test]
    fn companion_matrix_roots() {
        // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
        let a = Matrix::from_rows(&[
            vec![6.0, -11.0, 6.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
        ]);
        let eigs = eigenvalues(&a);
        let res = sorted_res(eigs.iter().map(|e| e.re).collect());
        assert!((res[0] - 1.0).abs() < 1e-8);
        assert!((res[1] - 2.0).abs() < 1e-8);
        assert!((res[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn eigenvalue_sum_matches_trace() {
        let a = Matrix::from_rows(&[
            vec![0.3, -1.2, 0.5, 2.2],
            vec![2.0, 0.1, -0.7, 0.3],
            vec![-0.4, 0.9, -1.5, 1.1],
            vec![0.6, -0.8, 0.2, 0.4],
        ]);
        let eigs = eigenvalues(&a);
        let sum: Complex = eigs.iter().fold(Complex::ZERO, |acc, &e| acc + e);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        assert!((sum.re - trace).abs() < 1e-8, "sum {} vs trace {}", sum, trace);
        assert!(sum.im.abs() < 1e-8);
    }

    #[test]
    fn spectral_radius_of_contraction() {
        let a = Matrix::from_rows(&[vec![0.5, 0.1], vec![-0.2, 0.3]]);
        assert!(spectral_radius(&a) < 1.0);
    }

    #[test]
    fn defective_matrix_converges() {
        // Jordan block: eigenvalue 2 with multiplicity 2.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]);
        let eigs = eigenvalues(&a);
        for e in eigs {
            assert!((e - Complex::from_re(2.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_matrix() {
        assert_eq!(spectral_radius(&Matrix::zeros(4, 4)), 0.0);
    }
}
