//! A small, deterministic pseudo-random number generator.
//!
//! The workspace runs in fully offline environments, so instead of pulling in
//! an external RNG crate we keep a self-contained [SplitMix64] generator
//! here. It is not cryptographically secure — it exists to drive synthetic
//! workload generation, fault-schedule jitter, and randomized tests, all of
//! which only need fast, well-distributed, *reproducible* streams.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// Deterministic 64-bit pseudo-random number generator (SplitMix64).
///
/// Two generators constructed with the same seed produce bit-identical
/// streams on every platform, which the fault-injection subsystem relies on
/// for reproducible fault schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below requires n > 0");
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range_u64 requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `[lo, hi)` (half-open, matching slice indexing).
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::index requires lo < hi");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample via the Box-Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by keeping u1 strictly positive.
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Derives an independent child generator; used to give each fault event
    /// its own stream so event order never perturbs another event's samples.
    pub fn fork(&self, stream: u64) -> Self {
        let mut child = Self::seed_from_u64(
            self.state ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6a09_e667_f3bc_c909,
        );
        // Burn one output so trivially-related seeds decorrelate.
        child.next_u64();
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&y));
            let k = r.index(2, 9);
            assert!((2..9).contains(&k));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(1234);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn forked_streams_differ() {
        let base = Rng::seed_from_u64(99);
        let mut a = base.fork(0);
        let mut b = base.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn normal_moments_plausible() {
        let mut r = Rng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
