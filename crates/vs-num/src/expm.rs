//! Matrix exponential by scaling-and-squaring with a diagonal Padé
//! approximant.
//!
//! Used for zero-order-hold discretization of continuous-time state-space
//! models: `Ad = exp(A*T)`. The [6/6] Padé approximant with scaling keeps the
//! relative error far below anything the voltage-stacking models can resolve
//! (their matrices are at most 10x10 with modest norms after scaling).

use crate::linalg::{LuFactors, Matrix};

/// Computes `exp(a)` for a square real matrix.
///
/// # Panics
///
/// Panics if `a` is not square or contains non-finite entries.
pub fn expm(a: &Matrix<f64>) -> Matrix<f64> {
    assert_eq!(a.n_rows(), a.n_cols(), "expm requires a square matrix");
    assert!(a.max_abs().is_finite(), "expm requires finite entries");
    let n = a.n_rows();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }

    // Scale so that ||A/2^s||_inf <= 0.5.
    let norm = a.norm_inf();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as i32
    } else {
        0
    };
    let scaled = a.scale(0.5f64.powi(s));

    // [6/6] Padé: p(A) = sum c_k A^k, exp(A) ~= p(A) / p(-A) with the odd
    // terms negated in the denominator.
    const C: [f64; 7] = [
        1.0,
        1.0 / 2.0,
        5.0 / 44.0,
        1.0 / 66.0,
        1.0 / 792.0,
        1.0 / 15_840.0,
        1.0 / 665_280.0,
    ];
    let mut pow = Matrix::identity(n);
    let mut num = Matrix::identity(n); // c0 * I
    let mut den = Matrix::identity(n);
    for (k, &c) in C.iter().enumerate().skip(1) {
        pow = pow.matmul(&scaled);
        let term = pow.scale(c);
        num = num.add(&term);
        if k % 2 == 0 {
            den = den.add(&term);
        } else {
            den = den.sub(&term);
        }
    }
    let lu = LuFactors::factor(&den).expect("Pade denominator is well conditioned");
    // Solve den * X = num column-wise.
    let mut result = Matrix::zeros(n, n);
    let mut col = vec![0.0; n];
    for j in 0..n {
        for i in 0..n {
            col[i] = num[(i, j)];
        }
        lu.solve_in_place(&mut col);
        for i in 0..n {
            result[(i, j)] = col[i];
        }
    }

    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix<f64>, b: &Matrix<f64>, tol: f64) -> bool {
        a.sub(b).max_abs() < tol
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert!(approx_eq(&expm(&z), &Matrix::identity(3), 1e-14));
    }

    #[test]
    fn exp_of_diagonal() {
        let mut d = Matrix::zeros(2, 2);
        d[(0, 0)] = 1.0;
        d[(1, 1)] = -2.0;
        let e = expm(&d);
        assert!((e[(0, 0)] - 1.0f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-2.0f64).exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-14 && e[(1, 0)].abs() < 1e-14);
    }

    #[test]
    fn exp_of_rotation_generator() {
        // exp([[0,-t],[t,0]]) = [[cos t, -sin t],[sin t, cos t]].
        let t = 0.7;
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = -t;
        a[(1, 0)] = t;
        let e = expm(&a);
        assert!((e[(0, 0)] - t.cos()).abs() < 1e-12);
        assert!((e[(0, 1)] + t.sin()).abs() < 1e-12);
        assert!((e[(1, 0)] - t.sin()).abs() < 1e-12);
        assert!((e[(1, 1)] - t.cos()).abs() < 1e-12);
    }

    #[test]
    fn exp_of_nilpotent() {
        // N = [[0,1],[0,0]] => exp(N) = I + N exactly.
        let mut n = Matrix::zeros(2, 2);
        n[(0, 1)] = 1.0;
        let e = expm(&n);
        assert!((e[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((e[(0, 1)] - 1.0).abs() < 1e-14);
        assert!(e[(1, 0)].abs() < 1e-14);
        assert!((e[(1, 1)] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn exp_inverse_property() {
        // exp(A) * exp(-A) = I for any A.
        let a = Matrix::from_rows(&[
            vec![0.3, -1.2, 0.5],
            vec![2.0, 0.1, -0.7],
            vec![-0.4, 0.9, -1.5],
        ]);
        let e = expm(&a);
        let em = expm(&a.scale(-1.0));
        assert!(approx_eq(&e.matmul(&em), &Matrix::identity(3), 1e-10));
    }

    #[test]
    fn large_norm_matrix_scales_correctly() {
        // exp(diag(10)) via scaling-and-squaring.
        let mut d = Matrix::zeros(1, 1);
        d[(0, 0)] = 10.0;
        let e = expm(&d);
        assert!((e[(0, 0)] - 10.0f64.exp()).abs() / 10.0f64.exp() < 1e-12);
    }
}
