//! Structured solver failures.
//!
//! The transient solver reports *why* a step could not be accepted instead
//! of panicking, so higher layers (the co-simulation supervisor, experiment
//! sweeps) can degrade gracefully: retry with a smaller timestep, fall back
//! to a more dissipative integration method, or abort just one sweep cell.

use std::fmt;

use crate::netlist::NetlistError;

/// An error raised by [`crate::Transient`] stepping or reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The netlist itself is malformed or its system matrix is singular.
    Netlist(NetlistError),
    /// The factored system matrix became singular after a reconfiguration
    /// (switch toggle, recycler retune, timestep change).
    Singular {
        /// Simulated time at which the refactor failed, seconds.
        time_s: f64,
    },
    /// The candidate solution contains NaN or infinity — typically caused by
    /// non-finite control inputs or an upstream numerical blow-up.
    NonFinite {
        /// Simulated time of the rejected step, seconds.
        time_s: f64,
        /// Which vector went non-finite (`"solution"`, `"controls"`).
        what: &'static str,
    },
    /// The candidate solution is finite but implausibly large, indicating
    /// numerical divergence of the integration.
    Divergence {
        /// Simulated time of the rejected step, seconds.
        time_s: f64,
        /// Largest node-voltage magnitude observed, volts.
        v_max: f64,
        /// The configured divergence limit, volts.
        limit_v: f64,
    },
    /// An element-targeting operation was applied to the wrong element kind
    /// (e.g. [`crate::Transient::set_switch`] on a resistor).
    WrongElementKind {
        /// Index of the offending element.
        element: usize,
        /// The kind the operation required (`"switch"`, `"charge recycler"`).
        expected: &'static str,
    },
    /// An element-targeting operation received an invalid value (negative or
    /// non-finite conductance, non-positive timestep, ...).
    InvalidParameter {
        /// Human-readable description of the rejected parameter.
        what: &'static str,
    },
    /// The adaptive recovery policy exhausted its retry budget.
    RecoveryExhausted {
        /// Simulated time at which recovery gave up, seconds.
        time_s: f64,
        /// Number of retry attempts made.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<SolverError>,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Netlist(e) => write!(f, "netlist error: {e}"),
            SolverError::Singular { time_s } => {
                write!(f, "system matrix singular at t = {time_s:.3e} s")
            }
            SolverError::NonFinite { time_s, what } => {
                write!(f, "non-finite {what} at t = {time_s:.3e} s")
            }
            SolverError::Divergence {
                time_s,
                v_max,
                limit_v,
            } => write!(
                f,
                "divergence at t = {time_s:.3e} s: |v| = {v_max:.3e} V exceeds {limit_v:.3e} V"
            ),
            SolverError::WrongElementKind { element, expected } => {
                write!(f, "element {element} is not a {expected}")
            }
            SolverError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            SolverError::RecoveryExhausted {
                time_s,
                attempts,
                last,
            } => write!(
                f,
                "recovery exhausted after {attempts} attempts at t = {time_s:.3e} s; last error: {last}"
            ),
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Netlist(e) => Some(e),
            SolverError::RecoveryExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<NetlistError> for SolverError {
    fn from(e: NetlistError) -> Self {
        SolverError::Netlist(e)
    }
}

impl SolverError {
    /// True for failures that adaptive recovery can plausibly clear
    /// (non-finite inputs, divergence); false for structural errors.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            SolverError::NonFinite { .. }
                | SolverError::Divergence { .. }
                | SolverError::Singular { .. }
        )
    }
}
