//! Batched structure-of-arrays transient stepping: advance *N*
//! parameter-variant rigs in lockstep through one solver kernel.
//!
//! The sweep simulates the same stacked-rig netlist over and over with
//! different load parameters; every one of those [`Transient`] instances
//! performs an identical forward/backward substitution per step. This module
//! groups lanes whose LU factors share a symbolic structure and solves them
//! through the SoA kernels in `vs-num`
//! ([`LuFactors::solve_multi_in_place`] when the factors are bit-identical,
//! [`LuFactors::solve_lanes_in_place`] when only the structure is shared),
//! amortizing factor-row loads and loop bookkeeping across lanes.
//!
//! # Determinism contract
//!
//! Per lane, a batched step performs **exactly** the scalar step's
//! floating-point operations in the scalar order: RHS stamping and the
//! commit phase are the scalar code itself (see [`Transient::step`], which
//! is the composition `build_rhs` → solve → `commit_step`), and the SoA
//! kernels replay the scalar substitution per lane. A lane's trajectory is
//! therefore bit-identical to the same lane stepped alone.
//!
//! # Mask semantics (exit / rejoin)
//!
//! A lane whose candidate solution fails the health gate drops out of the
//! fast path for the remainder of the shared timestep and is advanced by
//! the existing scalar [`Transient::step_with_recovery`] — which first
//! replays the identical failing step and then runs the policy's
//! dt-halving/backward-Euler schedule, so the lane's end state matches what
//! the scalar path would have produced. On success the lane has covered
//! exactly one nominal `dt` and rejoins the batch at the next shared
//! timestep; on [`SolverError::RecoveryExhausted`] (or any unrecoverable
//! error) the owning [`BatchedTransient`] retires the lane permanently and
//! never advances it again.

use crate::error::SolverError;
use crate::recovery::{RecoveryPolicy, StepReport};
use crate::transient::{Integration, Transient};
use vs_num::LuFactors;

/// Counters describing how a batch of lanes has been advanced. All fields
/// are cumulative since construction (or the last reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Shared lockstep timesteps taken (calls into the batched kernel).
    pub shared_steps: u64,
    /// Total lane-steps attempted across all shared steps.
    pub lane_steps: u64,
    /// Groups of ≥ 2 lanes solved through one SoA substitution.
    pub multi_lane_groups: u64,
    /// Lane-solves that went through a multi-lane group.
    pub multi_lane_solves: u64,
    /// Multi-lane groups whose lanes all shared one bit-identical
    /// factorization (the fastest kernel).
    pub shared_factor_groups: u64,
    /// Lanes solved alone because no other lane shared their structure.
    pub singleton_solves: u64,
    /// Lanes that failed the health gate and left the fast path.
    pub mask_exits: u64,
    /// Masked-out lanes that recovered and rejoined the lockstep batch.
    pub rejoins: u64,
    /// Lanes permanently retired by an unrecoverable error.
    pub retired: u64,
}

impl BatchStats {
    /// Folds another ledger into this one (for cumulative accounting across
    /// batches). The exhaustive destructuring makes adding a counter without
    /// extending the fold a compile error.
    pub fn absorb(&mut self, other: &BatchStats) {
        let BatchStats {
            shared_steps,
            lane_steps,
            multi_lane_groups,
            multi_lane_solves,
            shared_factor_groups,
            singleton_solves,
            mask_exits,
            rejoins,
            retired,
        } = other;
        self.shared_steps += shared_steps;
        self.lane_steps += lane_steps;
        self.multi_lane_groups += multi_lane_groups;
        self.multi_lane_solves += multi_lane_solves;
        self.shared_factor_groups += shared_factor_groups;
        self.singleton_solves += singleton_solves;
        self.mask_exits += mask_exits;
        self.rejoins += rejoins;
        self.retired += retired;
    }
}

/// Per-lane grouping key: lanes solve together only when every field
/// matching the *symbolic* structure agrees; the value fields decide whether
/// the shared-factor kernel applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LaneKey {
    structure: u64,
    dim: usize,
    fingerprint: u64,
    dt_bits: u64,
    method: Integration,
}

impl LaneKey {
    fn of(lane: &Transient) -> Self {
        LaneKey {
            structure: lane.lu().structure_key(),
            dim: lane.system_dim(),
            fingerprint: lane.fingerprint(),
            dt_bits: lane.dt().to_bits(),
            method: lane.method(),
        }
    }

    /// Lanes with equal `groupable` keys may share one SoA substitution.
    fn groupable(&self, other: &Self) -> bool {
        self.structure == other.structure && self.dim == other.dim
    }

    /// Lanes with equal `identical` keys have bit-identical stamp matrices
    /// (same netlist value bits, timestep, and integration method) and
    /// therefore bit-identical LU factors.
    fn identical(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.dt_bits == other.dt_bits
            && self.method == other.method
            && self.groupable(other)
    }
}

/// Reusable buffers for [`step_lanes_with_recovery`]; hold one per batch (or
/// per worker) so repeated shared steps allocate nothing once warmed up.
#[derive(Debug, Default)]
pub struct BatchScratch {
    soa: Vec<f64>,
    keys: Vec<LaneKey>,
    t_new: Vec<f64>,
    group: Vec<usize>,
    grouped: Vec<bool>,
}

/// Advances every lane by one shared timestep, grouping structurally
/// compatible lanes into SoA solves, and pushes one result per lane (in lane
/// order) into `out`.
///
/// `Ok(report)` means the lane advanced exactly one nominal `dt`
/// (`report.recovered()` tells whether it left the fast path and came back);
/// `Err` means the lane failed even under its recovery policy and now sits
/// at its last accepted state — the caller decides whether to retire it
/// (see [`BatchedTransient::step_all`]).
///
/// # Panics
///
/// Panics if `policies.len() != lanes.len()`.
pub fn step_lanes_with_recovery(
    lanes: &mut [&mut Transient],
    policies: &[RecoveryPolicy],
    scratch: &mut BatchScratch,
    stats: &mut BatchStats,
    out: &mut Vec<Result<StepReport, SolverError>>,
) {
    let n = lanes.len();
    assert_eq!(policies.len(), n, "one recovery policy per lane");
    out.clear();
    if n == 0 {
        return;
    }
    stats.shared_steps += 1;
    stats.lane_steps += n as u64;

    // Phase 1: stamp every lane's RHS (scalar code, per lane).
    scratch.keys.clear();
    scratch.t_new.clear();
    for lane in lanes.iter_mut() {
        let t_new = lane.time() + lane.dt();
        lane.build_rhs(t_new);
        scratch.t_new.push(t_new);
        scratch.keys.push(LaneKey::of(lane));
    }

    // Phase 2: group by symbolic structure and solve. Group membership only
    // selects *which* bit-identical kernel runs, so the (greedy, order-
    // preserving) grouping strategy can never change a lane's result.
    scratch.grouped.clear();
    scratch.grouped.resize(n, false);
    for i in 0..n {
        if scratch.grouped[i] {
            continue;
        }
        scratch.grouped[i] = true;
        scratch.group.clear();
        scratch.group.push(i);
        for j in (i + 1)..n {
            if !scratch.grouped[j] && scratch.keys[i].groupable(&scratch.keys[j]) {
                scratch.grouped[j] = true;
                scratch.group.push(j);
            }
        }
        let m = scratch.group.len();
        if m == 1 {
            lanes[i].solve_scratch();
            stats.singleton_solves += 1;
            continue;
        }
        // Gather into the interleaved index-major SoA buffer: the m values
        // of unknown k sit contiguously at soa[k*m..(k+1)*m].
        let dim = scratch.keys[i].dim;
        scratch.soa.clear();
        scratch.soa.resize(dim * m, 0.0);
        for (l, &li) in scratch.group.iter().enumerate() {
            let rhs = lanes[li].rhs_mut();
            for (k, &v) in rhs[..dim].iter().enumerate() {
                scratch.soa[k * m + l] = v;
            }
        }
        let shared_factors = scratch
            .group
            .iter()
            .all(|&li| scratch.keys[i].identical(&scratch.keys[li]));
        if shared_factors {
            // Identical stamp bits ⇒ identical factors: one representative
            // factorization serves the whole group.
            debug_assert!(
                scratch
                    .group
                    .iter()
                    .all(|&li| lanes[i].lu().bitwise_eq(lanes[li].lu())),
                "lanes with identical keys must share factor bits"
            );
            lanes[i].lu().solve_multi_in_place(&mut scratch.soa, m);
            stats.shared_factor_groups += 1;
        } else {
            // Parameter-variant lanes: per-lane numeric factors over the
            // shared symbolic structure.
            let factors: Vec<&LuFactors<f64>> =
                scratch.group.iter().map(|&li| lanes[li].lu()).collect();
            LuFactors::solve_lanes_in_place(&factors, &mut scratch.soa);
        }
        stats.multi_lane_groups += 1;
        stats.multi_lane_solves += m as u64;
        for (l, &li) in scratch.group.iter().enumerate() {
            let rhs = lanes[li].rhs_mut();
            for (k, x) in rhs[..dim].iter_mut().enumerate() {
                *x = scratch.soa[k * m + l];
            }
        }
    }

    // Phase 3: gate + commit per lane (scalar code). A gate failure masks
    // the lane out of the fast path; the scalar recovery protocol advances
    // it through the same nominal dt, bit-identically to a scalar run.
    for (i, lane) in lanes.iter_mut().enumerate() {
        match lane.commit_step(scratch.t_new[i]) {
            Ok(()) => out.push(Ok(StepReport::default())),
            Err(_) => {
                stats.mask_exits += 1;
                match lane.step_with_recovery(&policies[i]) {
                    Ok(report) => {
                        stats.rejoins += 1;
                        out.push(Ok(report));
                    }
                    Err(e) => out.push(Err(e)),
                }
            }
        }
    }
}

/// What happened to one lane during a [`BatchedTransient::step_all`] call.
#[derive(Debug)]
pub enum LaneOutcome {
    /// The lane advanced one nominal `dt`; the report records any recovery
    /// activity (a masked-out excursion through the scalar path).
    Stepped(StepReport),
    /// The lane failed this shared step even under recovery and has been
    /// permanently retired at its last accepted state.
    Faulted(SolverError),
    /// The lane was already retired and was not touched.
    Retired,
}

impl LaneOutcome {
    /// `true` for a lane that advanced this shared step.
    pub fn advanced(&self) -> bool {
        matches!(self, LaneOutcome::Stepped(_))
    }
}

/// *N* independent [`Transient`] analyses advanced in lockstep, with an
/// active-lane mask: healthy lanes move through the batched SoA fast path,
/// diverging lanes fall back to scalar recovery for one timestep, and
/// unrecoverable lanes are retired permanently.
///
/// See the module docs at the top of `batched.rs` for the determinism
/// contract and mask semantics.
#[derive(Debug)]
pub struct BatchedTransient {
    lanes: Vec<Transient>,
    active: Vec<bool>,
    outcomes: Vec<LaneOutcome>,
    scratch: BatchScratch,
    stats: BatchStats,
    policies: Vec<RecoveryPolicy>,
    results: Vec<Result<StepReport, SolverError>>,
}

impl BatchedTransient {
    /// Wraps independently constructed lanes into one lockstep batch. Lanes
    /// may differ arbitrarily (even in netlist topology); only structurally
    /// compatible lanes share solves, the rest run scalar within the
    /// lockstep schedule.
    pub fn new(lanes: Vec<Transient>) -> Self {
        let n = lanes.len();
        BatchedTransient {
            lanes,
            active: vec![true; n],
            outcomes: Vec::with_capacity(n),
            scratch: BatchScratch::default(),
            stats: BatchStats::default(),
            policies: Vec::with_capacity(n),
            results: Vec::with_capacity(n),
        }
    }

    /// Number of lanes (active or retired).
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Whether lane `i` is still advancing (not retired).
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Borrows lane `i`.
    pub fn lane(&self, i: usize) -> &Transient {
        &self.lanes[i]
    }

    /// Mutably borrows lane `i` — e.g. to update its control inputs between
    /// shared steps, exactly as a scalar driver would.
    pub fn lane_mut(&mut self, i: usize) -> &mut Transient {
        &mut self.lanes[i]
    }

    /// Cumulative batch statistics.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Advances every active lane by one nominal `dt` under `policy`,
    /// returning one [`LaneOutcome`] per lane in lane order. Lanes that fail
    /// under recovery are retired: their state freezes at the last accepted
    /// step and subsequent calls report [`LaneOutcome::Retired`] without
    /// touching them.
    pub fn step_all(&mut self, policy: &RecoveryPolicy) -> &[LaneOutcome] {
        self.outcomes.clear();
        let n_active = self.active.iter().filter(|&&a| a).count();
        self.policies.clear();
        self.policies.resize(n_active, *policy);

        let mut refs: Vec<&mut Transient> = Vec::with_capacity(n_active);
        for (lane, &active) in self.lanes.iter_mut().zip(&self.active) {
            if active {
                refs.push(lane);
            }
        }
        step_lanes_with_recovery(
            &mut refs,
            &self.policies,
            &mut self.scratch,
            &mut self.stats,
            &mut self.results,
        );
        drop(refs);

        let mut results = self.results.drain(..);
        for active in self.active.iter_mut() {
            if !*active {
                self.outcomes.push(LaneOutcome::Retired);
                continue;
            }
            match results.next().expect("one result per active lane") {
                Ok(report) => self.outcomes.push(LaneOutcome::Stepped(report)),
                Err(e) => {
                    *active = false;
                    self.stats.retired += 1;
                    self.outcomes.push(LaneOutcome::Faulted(e));
                }
            }
        }
        &self.outcomes
    }

    /// Tears the batch down into its lanes, in lane order.
    pub fn into_lanes(self) -> Vec<Transient> {
        self.lanes
    }
}
