//! DC operating-point analysis.
//!
//! Capacitors are treated as open circuits and inductors as ideal shorts
//! (with their branch current retained as an unknown). The result is used to
//! initialize transient runs at equilibrium so start-up transients do not
//! pollute supply-noise statistics.

use vs_num::{LuFactors, Matrix};
use crate::netlist::{Element, Netlist, NetlistError, NodeId};

/// Solution of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    pub(crate) node_voltages: Vec<f64>,
    pub(crate) group2_currents: Vec<f64>,
    pub(crate) group2_elements: Vec<usize>,
}

impl DcSolution {
    /// Voltage of `node` relative to ground.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            self.node_voltages[node.index() - 1]
        }
    }

    /// Branch current of a group-2 element (voltage source or inductor),
    /// flowing from its first terminal to its second through the element.
    /// Returns `None` for other element kinds.
    pub fn branch_current(&self, element: crate::ElementId) -> Option<f64> {
        self.group2_elements
            .iter()
            .position(|&e| e == element.index())
            .map(|k| self.group2_currents[k])
    }
}

impl Netlist {
    /// Computes the DC operating point with all controlled sources at zero
    /// amperes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed or the system is
    /// singular (e.g. a node with no DC path to ground).
    pub fn dc_operating_point(&self) -> Result<DcSolution, NetlistError> {
        self.dc_operating_point_with_controls(&vec![0.0; self.n_controls()])
    }

    /// Computes the DC operating point with explicit control values for
    /// controlled current sources.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed or the system is
    /// singular.
    pub fn dc_operating_point_with_controls(
        &self,
        controls: &[f64],
    ) -> Result<DcSolution, NetlistError> {
        self.validate()?;
        let group2 = self.group2_elements();
        let n_nodes = self.n_nodes() - 1;
        let dim = self.system_dim();
        let mut a = Matrix::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];

        let stamp_conductance = |a: &mut Matrix<f64>, na: NodeId, nb: NodeId, g: f64| {
            if let Some(i) = self.node_var(na) {
                a[(i, i)] += g;
            }
            if let Some(j) = self.node_var(nb) {
                a[(j, j)] += g;
            }
            if let (Some(i), Some(j)) = (self.node_var(na), self.node_var(nb)) {
                a[(i, j)] -= g;
                a[(j, i)] -= g;
            }
        };

        for (idx, e) in self.elements().iter().enumerate() {
            match *e {
                Element::Resistor { a: na, b: nb, ohms } => {
                    stamp_conductance(&mut a, na, nb, 1.0 / ohms);
                }
                Element::Switch {
                    a: na,
                    b: nb,
                    r_on,
                    r_off,
                    closed,
                } => {
                    let r = if closed { r_on } else { r_off };
                    stamp_conductance(&mut a, na, nb, 1.0 / r);
                }
                Element::Capacitor { .. } => {} // open at DC
                Element::Inductor { a: na, b: nb, .. } => {
                    // Short at DC: V(a) - V(b) = 0, branch current unknown.
                    let k = n_nodes + group2.iter().position(|&g| g == idx).unwrap();
                    if let Some(i) = self.node_var(na) {
                        a[(k, i)] += 1.0;
                        a[(i, k)] += 1.0;
                    }
                    if let Some(j) = self.node_var(nb) {
                        a[(k, j)] -= 1.0;
                        a[(j, k)] -= 1.0;
                    }
                }
                Element::VoltageSource { pos, neg, volts } => {
                    let k = n_nodes + group2.iter().position(|&g| g == idx).unwrap();
                    if let Some(i) = self.node_var(pos) {
                        a[(k, i)] += 1.0;
                        a[(i, k)] += 1.0;
                    }
                    if let Some(j) = self.node_var(neg) {
                        a[(k, j)] -= 1.0;
                        a[(j, k)] -= 1.0;
                    }
                    rhs[k] = volts;
                }
                Element::ChargeRecycler {
                    top,
                    mid,
                    bottom,
                    siemens,
                } => {
                    let g = siemens;
                    let entries = [
                        (top, top, g),
                        (top, mid, -2.0 * g),
                        (top, bottom, g),
                        (mid, top, -2.0 * g),
                        (mid, mid, 4.0 * g),
                        (mid, bottom, -2.0 * g),
                        (bottom, top, g),
                        (bottom, mid, -2.0 * g),
                        (bottom, bottom, g),
                    ];
                    for (r, c, v) in entries {
                        if let (Some(i), Some(j)) = (self.node_var(r), self.node_var(c)) {
                            a[(i, j)] += v;
                        }
                    }
                }
                Element::CurrentSource {
                    a: na,
                    b: nb,
                    waveform,
                } => {
                    let i_val = waveform.value_at(0.0, controls);
                    if let Some(i) = self.node_var(na) {
                        rhs[i] -= i_val;
                    }
                    if let Some(j) = self.node_var(nb) {
                        rhs[j] += i_val;
                    }
                }
            }
        }

        let lu = LuFactors::factor(&a).map_err(|_| NetlistError::Singular)?;
        let x = lu.solve(&rhs);
        Ok(DcSolution {
            node_voltages: x[..n_nodes].to_vec(),
            group2_currents: x[n_nodes..].to_vec(),
            group2_elements: group2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn voltage_divider() {
        let mut n = Netlist::new();
        let vin = n.node("vin");
        let mid = n.node("mid");
        n.voltage_source(vin, Netlist::GROUND, 4.0);
        n.resistor(vin, mid, 3.0);
        n.resistor(mid, Netlist::GROUND, 1.0);
        let dc = n.dc_operating_point().unwrap();
        assert!((dc.voltage(vin) - 4.0).abs() < 1e-12);
        assert!((dc.voltage(mid) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.voltage_source(a, Netlist::GROUND, 1.0);
        let l = n.inductor(a, b, 1e-6);
        n.resistor(b, Netlist::GROUND, 2.0);
        let dc = n.dc_operating_point().unwrap();
        assert!((dc.voltage(b) - 1.0).abs() < 1e-12);
        assert!((dc.branch_current(l).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.voltage_source(a, Netlist::GROUND, 1.0);
        n.resistor(a, b, 1.0);
        n.capacitor(b, Netlist::GROUND, 1e-9);
        // With the cap open, no current flows, so V(b) = V(a).
        // A bleed resistor keeps the system nonsingular.
        n.resistor(b, Netlist::GROUND, 1e9);
        let dc = n.dc_operating_point().unwrap();
        assert!((dc.voltage(b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_direction() {
        // 1 A drawn from node a to ground through the source, into a 2-ohm
        // resistor from a supply: models a load.
        let mut n = Netlist::new();
        let vin = n.node("vin");
        let a = n.node("a");
        n.voltage_source(vin, Netlist::GROUND, 5.0);
        n.resistor(vin, a, 2.0);
        n.current_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        let dc = n.dc_operating_point().unwrap();
        // Load current of 1 A drops 2 V across the resistor.
        assert!((dc.voltage(a) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.resistor(a, b, 1.0); // neither node tied to anything else
        assert_eq!(n.dc_operating_point().unwrap_err(), NetlistError::Singular);
    }

    #[test]
    fn controlled_source_in_dc() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.voltage_source(a, Netlist::GROUND, 1.0);
        let r = n.node("r");
        n.resistor(a, r, 1.0);
        let (_e, c) = n.controlled_current_source(r, Netlist::GROUND);
        let dc = n.dc_operating_point_with_controls(&[0.25]).unwrap();
        assert_eq!(c.index(), 0);
        assert!((dc.voltage(r) - 0.75).abs() < 1e-12);
    }
}
