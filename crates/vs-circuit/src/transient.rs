//! Fixed-step transient simulation with companion models.
//!
//! The system matrix depends only on topology, component values, switch
//! states, the timestep, and the integration method — not on source values —
//! so it is LU-factored once and each step costs a single O(n²)
//! forward/backward substitution. Switch toggles trigger a refactor.
//!
//! Two integration methods are provided:
//!
//! * [`Integration::BackwardEuler`] — L-stable, first order, slightly
//!   dissipative; robust default for stiff power-delivery networks.
//! * [`Integration::Trapezoidal`] — A-stable, second order, energy
//!   preserving; what SPICE uses by default and the default here.

use crate::error::SolverError;
use crate::netlist::{ControlId, Element, ElementId, Netlist, NetlistError, NodeId, Waveform};
use crate::recovery::{RecoveryPolicy, StepReport};
use vs_num::{LuFactors, Matrix};

/// Sentinel for "this element has no entry in the index map".
const NO_INDEX: usize = usize::MAX;

/// Numerical integration method for reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// First-order implicit Euler.
    BackwardEuler,
    /// Second-order trapezoidal rule (SPICE default).
    #[default]
    Trapezoidal,
}

#[derive(Debug, Clone, Copy)]
struct CapState {
    /// Voltage across the capacitor at the previous accepted step.
    v_prev: f64,
    /// Branch current at the previous accepted step (trapezoidal only).
    i_prev: f64,
}

#[derive(Debug, Clone, Copy)]
struct IndState {
    /// Branch current at the previous accepted step.
    i_prev: f64,
    /// Voltage across the inductor at the previous accepted step
    /// (trapezoidal only).
    v_prev: f64,
}

/// One precomputed right-hand-side stamp, with node variables resolved to
/// MNA indices (`NO_INDEX` for ground) and companion conductances baked in.
/// The plan is rebuilt on every [`Transient::refactor`], so it always agrees
/// with the current `dt`, integration method, and element values, and the
/// per-step loop touches no `NodeId` lookups or element matches. The ops are
/// evaluated in element order with identical floating-point expressions, so
/// the plan is bit-for-bit equivalent to stamping from the netlist.
#[derive(Debug, Clone, Copy)]
enum RhsOp {
    /// Capacitor companion current source (`g` = companion conductance).
    Cap { g: f64, state: usize, a: usize, b: usize },
    /// Inductor companion voltage (`r_eq` = companion resistance). `a`/`b`
    /// are carried for the post-solve companion-state update.
    Ind { row: usize, r_eq: f64, state: usize, a: usize, b: usize },
    /// Ideal voltage source row.
    Vsrc { row: usize, volts: f64 },
    /// (Possibly controlled) current source.
    Isrc { a: usize, b: usize, waveform: Waveform },
}

/// Precomputed per-element power evaluation, one op per element in element
/// order. Same bit-identity contract as [`RhsOp`].
#[derive(Debug, Clone, Copy)]
enum EnergyOp {
    /// Resistor or switch (with the active resistance baked in): dissipates
    /// into `resistive_loss_j`.
    Conductor { a: usize, b: usize, ohms: f64 },
    /// Capacitor: reactive, element-level accounting only.
    Cap { a: usize, b: usize, state: usize },
    /// Inductor: reactive, element-level accounting only.
    Ind { a: usize, b: usize, row: usize },
    /// Voltage source: delivers into `source_delivered_j`.
    Vsrc { a: usize, b: usize, row: usize },
    /// Current source (load): absorbs into `load_absorbed_j`.
    Isrc { a: usize, b: usize, waveform: Waveform },
    /// Charge recycler: conversion loss into `recycler_loss_j`.
    Recycler { top: usize, mid: usize, bottom: usize, siemens: f64 },
}

/// Reusable solver state for running many [`Transient`] analyses
/// back-to-back without re-allocating.
///
/// A workspace owns every growable buffer the solver needs — the stamp
/// matrix, the LU factors and their sparsity pattern, solution/RHS/state
/// vectors, and the precomputed stamp/energy plans — plus a cached DC
/// operating point keyed by a fingerprint of the netlist. Constructing a
/// `Transient` *in* a workspace ([`Transient::new_in`],
/// [`Transient::with_initial_state_in`]) moves the buffers into the solver;
/// [`Transient::into_workspace`] moves them back out when the run is done.
///
/// Reusing a workspace never changes results: every buffer is fully
/// re-initialized from the netlist, and the DC cache is only consulted when
/// the netlist fingerprint (topology + element values + control count)
/// matches exactly.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    stamp: Matrix<f64>,
    lu: Option<LuFactors<f64>>,
    solution: Vec<f64>,
    rhs: Vec<f64>,
    controls: Vec<f64>,
    cap_states: Vec<(usize, CapState)>,
    ind_states: Vec<(usize, IndState)>,
    group2_row_of: Vec<usize>,
    cap_state_of: Vec<usize>,
    ind_state_of: Vec<usize>,
    rhs_plan: Vec<RhsOp>,
    energy_plan: Vec<EnergyOp>,
    per_element_absorbed_j: Vec<f64>,
    dc_cache: Option<DcCache>,
    dc_hits: u64,
    runs: u64,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times [`Transient::new_in`] served its DC operating point
    /// from the cache instead of recomputing it.
    pub fn dc_cache_hits(&self) -> u64 {
        self.dc_hits
    }

    /// How many `Transient` analyses have been constructed in this
    /// workspace.
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

/// Cached DC operating point, valid only for an identical netlist.
#[derive(Debug, Clone)]
struct DcCache {
    key: u64,
    node_voltages: Vec<f64>,
    group2_currents: Vec<f64>,
}

/// Voltage of a resolved node variable (`NO_INDEX` = ground = 0 V) —
/// identical to [`Transient::voltage`] after `node_var` resolution.
#[inline]
fn node_v(solution: &[f64], var: usize) -> f64 {
    if var == NO_INDEX {
        0.0
    } else {
        solution[var]
    }
}

#[inline]
fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

fn fnv_node(h: u64, n: NodeId) -> u64 {
    fnv(h, n.index() as u64)
}

fn fnv_waveform(mut h: u64, w: &Waveform) -> u64 {
    match *w {
        Waveform::Dc(v) => {
            h = fnv(h, 1);
            fnv(h, v.to_bits())
        }
        Waveform::Sine { offset, amplitude, freq_hz, phase_rad } => {
            h = fnv(h, 2);
            for v in [offset, amplitude, freq_hz, phase_rad] {
                h = fnv(h, v.to_bits());
            }
            h
        }
        Waveform::Step { before, after, at_s } => {
            h = fnv(h, 3);
            for v in [before, after, at_s] {
                h = fnv(h, v.to_bits());
            }
            h
        }
        Waveform::Pulse { low, high, t0_s, width_s, period_s } => {
            h = fnv(h, 4);
            for v in [low, high, t0_s, width_s, period_s] {
                h = fnv(h, v.to_bits());
            }
            h
        }
        Waveform::Controlled(c) => {
            h = fnv(h, 5);
            fnv(h, c.index() as u64)
        }
    }
}

/// A structural fingerprint of a netlist: topology, element values, switch
/// states, and control count. Two netlists with equal fingerprints have the
/// same DC operating point (modulo a vanishing hash-collision risk, accepted
/// because the cache is an optimization keyed per-workspace).
fn netlist_fingerprint(net: &Netlist) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv(h, net.n_nodes() as u64);
    h = fnv(h, net.n_controls() as u64);
    for e in net.elements() {
        match *e {
            Element::Resistor { a, b, ohms } => {
                h = fnv(h, 11);
                h = fnv_node(h, a);
                h = fnv_node(h, b);
                h = fnv(h, ohms.to_bits());
            }
            Element::Capacitor { a, b, farads } => {
                h = fnv(h, 12);
                h = fnv_node(h, a);
                h = fnv_node(h, b);
                h = fnv(h, farads.to_bits());
            }
            Element::Inductor { a, b, henries } => {
                h = fnv(h, 13);
                h = fnv_node(h, a);
                h = fnv_node(h, b);
                h = fnv(h, henries.to_bits());
            }
            Element::VoltageSource { pos, neg, volts } => {
                h = fnv(h, 14);
                h = fnv_node(h, pos);
                h = fnv_node(h, neg);
                h = fnv(h, volts.to_bits());
            }
            Element::CurrentSource { a, b, waveform } => {
                h = fnv(h, 15);
                h = fnv_node(h, a);
                h = fnv_node(h, b);
                h = fnv_waveform(h, &waveform);
            }
            Element::ChargeRecycler { top, mid, bottom, siemens } => {
                h = fnv(h, 16);
                h = fnv_node(h, top);
                h = fnv_node(h, mid);
                h = fnv_node(h, bottom);
                h = fnv(h, siemens.to_bits());
            }
            Element::Switch { a, b, r_on, r_off, closed } => {
                h = fnv(h, 17);
                h = fnv_node(h, a);
                h = fnv_node(h, b);
                h = fnv(h, r_on.to_bits());
                h = fnv(h, r_off.to_bits());
                h = fnv(h, u64::from(closed));
            }
        }
    }
    h
}

/// Cumulative energy bookkeeping for a transient run.
#[derive(Debug, Clone, Default)]
pub struct EnergyReport {
    /// Total energy dissipated in resistors and switches, in joules.
    pub resistive_loss_j: f64,
    /// Total energy delivered by voltage sources, in joules (positive when
    /// sourcing).
    pub source_delivered_j: f64,
    /// Total energy absorbed by current sources (loads), in joules.
    pub load_absorbed_j: f64,
    /// Total switched-capacitor conversion loss in charge recyclers, joules.
    pub recycler_loss_j: f64,
    /// Simulated time span covered by this report, in seconds.
    pub elapsed_s: f64,
}

/// A running transient analysis over a [`Netlist`].
///
/// # Examples
///
/// ```
/// use vs_circuit::{Netlist, Transient, Integration, Waveform};
///
/// // RC low-pass step response.
/// let mut net = Netlist::new();
/// let vin = net.node("vin");
/// let out = net.node("out");
/// net.voltage_source(vin, Netlist::GROUND, 1.0);
/// net.resistor(vin, out, 1_000.0);
/// net.capacitor(out, Netlist::GROUND, 1e-9);
/// let mut sim = Transient::from_flat_start(&net, 10e-9, Integration::Trapezoidal)?;
/// for _ in 0..1_000 {
///     sim.step()?;
/// }
/// // After 10 us = 10 tau, the output has settled to the input.
/// assert!((sim.voltage(out) - 1.0).abs() < 1e-3);
/// # Ok::<(), vs_circuit::SolverError>(())
/// ```
#[derive(Debug)]
pub struct Transient {
    netlist: Netlist,
    dt: f64,
    method: Integration,
    time: f64,
    n_node_vars: usize,
    /// Scratch for the stamped system matrix, reused across refactors.
    stamp: Matrix<f64>,
    lu: LuFactors<f64>,
    solution: Vec<f64>,
    rhs: Vec<f64>,
    controls: Vec<f64>,
    cap_states: Vec<(usize, CapState)>,
    ind_states: Vec<(usize, IndState)>,
    /// element index -> row in the MNA system for group-2 elements
    /// (`NO_INDEX` for group-1 elements). Precomputed so the per-step hot
    /// path never searches.
    group2_row_of: Vec<usize>,
    /// element index -> position in `cap_states` (`NO_INDEX` otherwise).
    cap_state_of: Vec<usize>,
    /// element index -> position in `ind_states` (`NO_INDEX` otherwise).
    ind_state_of: Vec<usize>,
    /// Per-step RHS stamps with indices and conductances resolved; rebuilt
    /// by [`Transient::refactor`].
    rhs_plan: Vec<RhsOp>,
    /// Per-element power evaluation plan; rebuilt by [`Transient::refactor`].
    energy_plan: Vec<EnergyOp>,
    per_element_absorbed_j: Vec<f64>,
    energy: EnergyReport,
    /// Cached [`netlist_fingerprint`] of the current netlist (topology,
    /// element values, switch states), refreshed by every refactor. Batched
    /// stepping groups lanes by this value plus `dt`/`method`: equal keys
    /// mean a bit-identical stamp matrix and therefore bit-identical LU
    /// factors.
    fingerprint: u64,
    /// Node voltages above this magnitude are classified as divergence.
    divergence_limit_v: f64,
    /// Carried through from the owning [`SolverWorkspace`], if any.
    dc_cache: Option<DcCache>,
    dc_hits: u64,
    runs: u64,
}

/// Rollback state captured before a risky step (see
/// [`Transient::step_with_recovery`]). Control inputs are deliberately
/// excluded: sanitized controls must stay sanitized across a retry.
#[derive(Debug, Clone)]
struct Snapshot {
    time: f64,
    solution: Vec<f64>,
    cap_states: Vec<(usize, CapState)>,
    ind_states: Vec<(usize, IndState)>,
    per_element_absorbed_j: Vec<f64>,
    energy: EnergyReport,
}

impl Transient {
    /// Creates a transient analysis initialized from the DC operating point
    /// (controlled sources at zero amperes).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed or singular.
    pub fn new(netlist: &Netlist, dt: f64, method: Integration) -> Result<Self, NetlistError> {
        Self::new_in(netlist, dt, method, SolverWorkspace::new())
    }

    /// Like [`Transient::new`], but reusing the buffers of `ws` — including
    /// its cached DC operating point when the netlist fingerprint matches,
    /// which skips the (second) factorization entirely.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed or singular.
    pub fn new_in(
        netlist: &Netlist,
        dt: f64,
        method: Integration,
        mut ws: SolverWorkspace,
    ) -> Result<Self, NetlistError> {
        let key = netlist_fingerprint(netlist);
        let cache = match ws.dc_cache.take() {
            Some(c) if c.key == key => {
                ws.dc_hits += 1;
                c
            }
            _ => {
                let dc = netlist.dc_operating_point()?;
                let mut node_voltages = vec![0.0; netlist.n_nodes()];
                for (i, v) in node_voltages.iter_mut().enumerate().skip(1) {
                    *v = dc.voltage(NodeId(i));
                }
                DcCache {
                    key,
                    node_voltages,
                    group2_currents: dc.group2_currents,
                }
            }
        };
        let mut sim = Self::with_initial_state_in(
            netlist,
            dt,
            method,
            &cache.node_voltages,
            &cache.group2_currents,
            ws,
        )?;
        sim.dc_cache = Some(cache);
        Ok(sim)
    }

    /// Creates a transient analysis with all node voltages and branch
    /// currents at zero (a "cold start").
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed or singular.
    pub fn from_flat_start(
        netlist: &Netlist,
        dt: f64,
        method: Integration,
    ) -> Result<Self, NetlistError> {
        let voltages = vec![0.0; netlist.n_nodes()];
        let g2 = vec![0.0; netlist.group2_elements().len()];
        Self::with_initial_state(netlist, dt, method, &voltages, &g2)
    }

    /// Creates a transient analysis from explicit initial node voltages
    /// (indexed by node id, ground included) and group-2 branch currents (in
    /// group-2 element order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed or singular.
    ///
    /// # Panics
    ///
    /// Panics if the slices have the wrong lengths.
    pub fn with_initial_state(
        netlist: &Netlist,
        dt: f64,
        method: Integration,
        node_voltages: &[f64],
        group2_currents: &[f64],
    ) -> Result<Self, NetlistError> {
        Self::with_initial_state_in(
            netlist,
            dt,
            method,
            node_voltages,
            group2_currents,
            SolverWorkspace::new(),
        )
    }

    /// Like [`Transient::with_initial_state`], but reusing the buffers of
    /// `ws` so construction performs no heap allocation beyond cloning the
    /// netlist (once the workspace has warmed up to this system size).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed or singular.
    ///
    /// # Panics
    ///
    /// Panics if the slices have the wrong lengths.
    pub fn with_initial_state_in(
        netlist: &Netlist,
        dt: f64,
        method: Integration,
        node_voltages: &[f64],
        group2_currents: &[f64],
        mut ws: SolverWorkspace,
    ) -> Result<Self, NetlistError> {
        netlist.validate()?;
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        assert_eq!(node_voltages.len(), netlist.n_nodes());
        let group2 = netlist.group2_elements();
        assert_eq!(group2_currents.len(), group2.len());

        let n_node_vars = netlist.n_nodes() - 1;
        let mut cap_states = ws.cap_states;
        let mut ind_states = ws.ind_states;
        cap_states.clear();
        ind_states.clear();
        for (idx, e) in netlist.elements().iter().enumerate() {
            match *e {
                Element::Capacitor { a, b, .. } => {
                    let v = node_voltages[a.index()] - node_voltages[b.index()];
                    cap_states.push((idx, CapState { v_prev: v, i_prev: 0.0 }));
                }
                Element::Inductor { a, b, .. } => {
                    let k = group2.iter().position(|&g| g == idx).unwrap();
                    let v = node_voltages[a.index()] - node_voltages[b.index()];
                    ind_states.push((
                        idx,
                        IndState {
                            i_prev: group2_currents[k],
                            v_prev: v,
                        },
                    ));
                }
                _ => {}
            }
        }

        let mut solution = ws.solution;
        solution.clear();
        solution.resize(n_node_vars + group2.len(), 0.0);
        solution[..n_node_vars].copy_from_slice(&node_voltages[1..=n_node_vars]);
        solution[n_node_vars..].copy_from_slice(group2_currents);

        let n_elements = netlist.elements().len();
        let mut group2_row_of = ws.group2_row_of;
        group2_row_of.clear();
        group2_row_of.resize(n_elements, NO_INDEX);
        for (k, &idx) in group2.iter().enumerate() {
            group2_row_of[idx] = n_node_vars + k;
        }
        let mut cap_state_of = ws.cap_state_of;
        cap_state_of.clear();
        cap_state_of.resize(n_elements, NO_INDEX);
        for (k, (idx, _)) in cap_states.iter().enumerate() {
            cap_state_of[*idx] = k;
        }
        let mut ind_state_of = ws.ind_state_of;
        ind_state_of.clear();
        ind_state_of.resize(n_elements, NO_INDEX);
        for (k, (idx, _)) in ind_states.iter().enumerate() {
            ind_state_of[*idx] = k;
        }
        let mut rhs = ws.rhs;
        rhs.clear();
        rhs.resize(netlist.system_dim(), 0.0);
        let mut controls = ws.controls;
        controls.clear();
        controls.resize(netlist.n_controls(), 0.0);
        let mut per_element_absorbed_j = ws.per_element_absorbed_j;
        per_element_absorbed_j.clear();
        per_element_absorbed_j.resize(n_elements, 0.0);
        let mut sim = Transient {
            netlist: netlist.clone(),
            dt,
            method,
            time: 0.0,
            n_node_vars,
            stamp: ws.stamp,
            lu: ws.lu.take().unwrap_or_default(),
            solution,
            rhs,
            controls,
            cap_states,
            ind_states,
            group2_row_of,
            cap_state_of,
            ind_state_of,
            rhs_plan: ws.rhs_plan,
            energy_plan: ws.energy_plan,
            per_element_absorbed_j,
            energy: EnergyReport::default(),
            fingerprint: 0,
            divergence_limit_v: 1e4,
            dc_cache: ws.dc_cache,
            dc_hits: ws.dc_hits,
            runs: ws.runs + 1,
        };
        sim.refactor()?;
        Ok(sim)
    }

    /// Tears the solver down into its reusable [`SolverWorkspace`], keeping
    /// every buffer (and the DC operating-point cache) for the next run.
    pub fn into_workspace(self) -> SolverWorkspace {
        SolverWorkspace {
            stamp: self.stamp,
            lu: Some(self.lu),
            solution: self.solution,
            rhs: self.rhs,
            controls: self.controls,
            cap_states: self.cap_states,
            ind_states: self.ind_states,
            group2_row_of: self.group2_row_of,
            cap_state_of: self.cap_state_of,
            ind_state_of: self.ind_state_of,
            rhs_plan: self.rhs_plan,
            energy_plan: self.energy_plan,
            per_element_absorbed_j: self.per_element_absorbed_j,
            dc_cache: self.dc_cache,
            dc_hits: self.dc_hits,
            runs: self.runs,
        }
    }

    /// Rebuilds and refactors the system matrix (after a switch toggle, a
    /// timestep/method change, or a recycler retune), and rebuilds the
    /// per-step RHS and energy plans so they agree with the new companion
    /// models. All storage — the stamp matrix, the LU factors, and the plan
    /// vectors — is reused, so a refactor performs no heap allocation once
    /// warmed up.
    fn refactor(&mut self) -> Result<(), NetlistError> {
        let dim = self.netlist.system_dim();
        let mut a = std::mem::take(&mut self.stamp);
        a.resize_zeroed(dim, dim);
        let net = &self.netlist;
        let stamp_g = |a: &mut Matrix<f64>, na: NodeId, nb: NodeId, g: f64| {
            if let Some(i) = net.node_var(na) {
                a[(i, i)] += g;
            }
            if let Some(j) = net.node_var(nb) {
                a[(j, j)] += g;
            }
            if let (Some(i), Some(j)) = (net.node_var(na), net.node_var(nb)) {
                a[(i, j)] -= g;
                a[(j, i)] -= g;
            }
        };

        for (idx, e) in net.elements().iter().enumerate() {
            match *e {
                Element::Resistor { a: na, b: nb, ohms } => stamp_g(&mut a, na, nb, 1.0 / ohms),
                Element::Switch {
                    a: na,
                    b: nb,
                    r_on,
                    r_off,
                    closed,
                } => stamp_g(&mut a, na, nb, 1.0 / if closed { r_on } else { r_off }),
                Element::Capacitor { a: na, b: nb, farads } => {
                    stamp_g(&mut a, na, nb, self.cap_conductance(farads));
                }
                Element::Inductor { a: na, b: nb, henries } => {
                    let k = self.group2_row(idx);
                    let r_eq = self.ind_resistance(henries);
                    if let Some(i) = net.node_var(na) {
                        a[(k, i)] += 1.0;
                        a[(i, k)] += 1.0;
                    }
                    if let Some(j) = net.node_var(nb) {
                        a[(k, j)] -= 1.0;
                        a[(j, k)] -= 1.0;
                    }
                    a[(k, k)] -= r_eq;
                }
                Element::VoltageSource { pos, neg, .. } => {
                    let k = self.group2_row(idx);
                    if let Some(i) = net.node_var(pos) {
                        a[(k, i)] += 1.0;
                        a[(i, k)] += 1.0;
                    }
                    if let Some(j) = net.node_var(neg) {
                        a[(k, j)] -= 1.0;
                        a[(j, k)] -= 1.0;
                    }
                }
                Element::ChargeRecycler {
                    top,
                    mid,
                    bottom,
                    siemens,
                } => {
                    let g = siemens;
                    let entries = [
                        (top, top, g),
                        (top, mid, -2.0 * g),
                        (top, bottom, g),
                        (mid, top, -2.0 * g),
                        (mid, mid, 4.0 * g),
                        (mid, bottom, -2.0 * g),
                        (bottom, top, g),
                        (bottom, mid, -2.0 * g),
                        (bottom, bottom, g),
                    ];
                    for (r, c, v) in entries {
                        if let (Some(i), Some(j)) = (net.node_var(r), net.node_var(c)) {
                            a[(i, j)] += v;
                        }
                    }
                }
                Element::CurrentSource { .. } => {}
            }
        }
        let factored = self.lu.refactor(&a);
        self.stamp = a;
        factored.map_err(|_| NetlistError::Singular)?;
        self.fingerprint = netlist_fingerprint(&self.netlist);
        self.rebuild_plans();
        Ok(())
    }

    /// Rebuilds the per-step RHS and per-element energy plans from the
    /// netlist, resolving node variables and companion conductances once so
    /// the per-step loops are branch-light and allocation-free. Must be kept
    /// in exact floating-point agreement with the element equations (see
    /// [`RhsOp`]).
    fn rebuild_plans(&mut self) {
        let var = |n: NodeId| self.netlist.node_var(n).unwrap_or(NO_INDEX);
        self.rhs_plan.clear();
        self.energy_plan.clear();
        for (idx, e) in self.netlist.elements().iter().enumerate() {
            match *e {
                Element::Resistor { a, b, ohms } => {
                    self.energy_plan.push(EnergyOp::Conductor { a: var(a), b: var(b), ohms });
                }
                Element::Switch { a, b, r_on, r_off, closed } => {
                    let ohms = if closed { r_on } else { r_off };
                    self.energy_plan.push(EnergyOp::Conductor { a: var(a), b: var(b), ohms });
                }
                Element::Capacitor { a, b, farads } => {
                    let state = self.cap_state_of[idx];
                    self.rhs_plan.push(RhsOp::Cap {
                        g: self.cap_conductance(farads),
                        state,
                        a: var(a),
                        b: var(b),
                    });
                    self.energy_plan.push(EnergyOp::Cap { a: var(a), b: var(b), state });
                }
                Element::Inductor { a, b, henries } => {
                    let row = self.group2_row_of[idx];
                    self.rhs_plan.push(RhsOp::Ind {
                        row,
                        r_eq: self.ind_resistance(henries),
                        state: self.ind_state_of[idx],
                        a: var(a),
                        b: var(b),
                    });
                    self.energy_plan.push(EnergyOp::Ind { a: var(a), b: var(b), row });
                }
                Element::VoltageSource { pos, neg, volts } => {
                    let row = self.group2_row_of[idx];
                    self.rhs_plan.push(RhsOp::Vsrc { row, volts });
                    self.energy_plan.push(EnergyOp::Vsrc { a: var(pos), b: var(neg), row });
                }
                Element::CurrentSource { a, b, waveform } => {
                    self.rhs_plan.push(RhsOp::Isrc { a: var(a), b: var(b), waveform });
                    self.energy_plan.push(EnergyOp::Isrc { a: var(a), b: var(b), waveform });
                }
                Element::ChargeRecycler { top, mid, bottom, siemens } => {
                    self.energy_plan.push(EnergyOp::Recycler {
                        top: var(top),
                        mid: var(mid),
                        bottom: var(bottom),
                        siemens,
                    });
                }
            }
        }
    }

    #[inline]
    fn cap_conductance(&self, farads: f64) -> f64 {
        match self.method {
            Integration::BackwardEuler => farads / self.dt,
            Integration::Trapezoidal => 2.0 * farads / self.dt,
        }
    }

    #[inline]
    fn ind_resistance(&self, henries: f64) -> f64 {
        match self.method {
            Integration::BackwardEuler => henries / self.dt,
            Integration::Trapezoidal => 2.0 * henries / self.dt,
        }
    }

    /// Precomputed MNA row for a group-2 element. Only called from match
    /// arms whose element kind guarantees group-2 membership, so the map is
    /// always populated there; `NO_INDEX` would fault loudly on indexing.
    #[inline]
    fn group2_row(&self, element_idx: usize) -> usize {
        self.group2_row_of[element_idx]
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The fixed timestep in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Sets the value of a controlled current source, effective from the next
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this netlist.
    pub fn set_control(&mut self, id: ControlId, amps: f64) {
        self.controls[id.index()] = amps;
    }

    /// Reads back a control value.
    pub fn control(&self, id: ControlId) -> f64 {
        self.controls[id.index()]
    }

    /// Toggles a switch; refactors the system matrix if the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::WrongElementKind`] if `id` does not refer to a
    /// switch, or [`SolverError::Singular`] if the new topology is singular.
    pub fn set_switch(&mut self, id: ElementId, closed: bool) -> Result<(), SolverError> {
        let changed = {
            let e = &mut self.netlist.elements_mut()[id.index()];
            match e {
                Element::Switch { closed: c, .. } => {
                    let changed = *c != closed;
                    *c = closed;
                    changed
                }
                _ => {
                    return Err(SolverError::WrongElementKind {
                        element: id.index(),
                        expected: "switch",
                    })
                }
            }
        };
        if changed {
            let t = self.time;
            self.refactor()
                .map_err(|_| SolverError::Singular { time_s: t })?;
        }
        Ok(())
    }

    /// Retunes a charge recycler's averaged conductance `f_sw * C_fly`,
    /// refactoring the system matrix if the value changed. This is the hook
    /// the fault-injection layer uses to model degraded or offline sub-IVRs.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::WrongElementKind`] if `id` is not a charge
    /// recycler, [`SolverError::InvalidParameter`] for a negative or
    /// non-finite conductance, or [`SolverError::Singular`] if the retuned
    /// matrix no longer factors.
    pub fn set_recycler_conductance(
        &mut self,
        id: ElementId,
        siemens: f64,
    ) -> Result<(), SolverError> {
        if !siemens.is_finite() || siemens < 0.0 {
            return Err(SolverError::InvalidParameter {
                what: "recycler conductance must be finite and non-negative",
            });
        }
        let changed = {
            let e = &mut self.netlist.elements_mut()[id.index()];
            match e {
                Element::ChargeRecycler { siemens: s, .. } => {
                    let changed = *s != siemens;
                    *s = siemens;
                    changed
                }
                _ => {
                    return Err(SolverError::WrongElementKind {
                        element: id.index(),
                        expected: "charge recycler",
                    })
                }
            }
        };
        if changed {
            let t = self.time;
            self.refactor()
                .map_err(|_| SolverError::Singular { time_s: t })?;
        }
        Ok(())
    }

    /// Reads back a charge recycler's averaged conductance, or `None` when
    /// `id` refers to some other element kind.
    pub fn recycler_conductance(&self, id: ElementId) -> Option<f64> {
        match self.netlist.elements()[id.index()] {
            Element::ChargeRecycler { siemens, .. } => Some(siemens),
            _ => None,
        }
    }

    /// Changes the fixed timestep, refactoring the companion-model matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] for a non-positive or
    /// non-finite `dt`, or [`SolverError::Singular`] if the new matrix no
    /// longer factors.
    pub fn set_timestep(&mut self, dt: f64) -> Result<(), SolverError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(SolverError::InvalidParameter {
                what: "timestep must be finite and positive",
            });
        }
        if dt != self.dt {
            self.dt = dt;
            let t = self.time;
            self.refactor()
                .map_err(|_| SolverError::Singular { time_s: t })?;
        }
        Ok(())
    }

    /// Changes the integration method, refactoring the companion-model
    /// matrix. The companion states are physical (branch voltages and
    /// currents), so switching methods mid-run is well-defined.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Singular`] if the new matrix no longer
    /// factors.
    pub fn set_method(&mut self, method: Integration) -> Result<(), SolverError> {
        if method != self.method {
            self.method = method;
            let t = self.time;
            self.refactor()
                .map_err(|_| SolverError::Singular { time_s: t })?;
        }
        Ok(())
    }

    /// The active integration method.
    pub fn method(&self) -> Integration {
        self.method
    }

    /// Sets the node-voltage magnitude beyond which a candidate solution is
    /// rejected as [`SolverError::Divergence`]. Defaults to 10 kV — far
    /// above any physical supply rail but small enough to catch blow-ups
    /// long before they reach infinity.
    pub fn set_divergence_limit(&mut self, volts: f64) {
        self.divergence_limit_v = volts.abs();
    }

    /// Voltage of `node` at the last accepted step.
    pub fn voltage(&self, node: NodeId) -> f64 {
        match self.netlist.node_var(node) {
            None => 0.0,
            Some(i) => self.solution[i],
        }
    }

    /// Branch current through an element at the last accepted step, flowing
    /// from its first terminal to its second (through the element).
    pub fn branch_current(&self, id: ElementId) -> f64 {
        let e = &self.netlist.elements()[id.index()];
        match *e {
            Element::Resistor { a, b, ohms } => (self.voltage(a) - self.voltage(b)) / ohms,
            Element::Switch {
                a,
                b,
                r_on,
                r_off,
                closed,
            } => (self.voltage(a) - self.voltage(b)) / if closed { r_on } else { r_off },
            Element::Capacitor { .. } => {
                let k = self.cap_state_of[id.index()];
                if k == NO_INDEX {
                    0.0
                } else {
                    self.cap_states[k].1.i_prev
                }
            }
            Element::Inductor { .. } | Element::VoltageSource { .. } => {
                let k = self.group2_row(id.index());
                self.solution[k]
            }
            Element::CurrentSource { waveform, .. } => waveform.value_at(self.time, &self.controls),
            Element::ChargeRecycler {
                top,
                mid,
                bottom,
                siemens,
            } => {
                let d = self.voltage(top) - 2.0 * self.voltage(mid) + self.voltage(bottom);
                siemens * d
            }
        }
    }

    /// Advances the simulation by one timestep.
    ///
    /// The step is **atomic**: the candidate solution passes a numerical
    /// health gate (finite, within the divergence limit) *before* any state
    /// is committed, so on error the solver still sits at the last accepted
    /// step and the caller may retry — see [`Transient::step_with_recovery`].
    ///
    /// # Errors
    ///
    /// * [`SolverError::NonFinite`] — the candidate solution contains NaN or
    ///   infinity (e.g. a non-finite control input).
    /// * [`SolverError::Divergence`] — a node voltage exceeded the
    ///   divergence limit ([`Transient::set_divergence_limit`]).
    pub fn step(&mut self) -> Result<(), SolverError> {
        let t_new = self.time + self.dt;
        self.build_rhs(t_new);
        self.lu.solve_in_place(&mut self.rhs);
        self.commit_step(t_new)
    }

    /// Stamps the right-hand side for the step toward `t_new` into the
    /// internal scratch buffer. The first phase of [`Transient::step`], split
    /// out so batched stepping can stamp many lanes, solve them in one
    /// structure-of-arrays substitution, and commit each lane — with
    /// `build_rhs` → solve → [`Transient::commit_step`] remaining the single
    /// definition of a step (so the batched path is bit-identical by
    /// construction).
    pub(crate) fn build_rhs(&mut self, t_new: f64) {
        self.rhs.fill(0.0);

        // Stamp the per-step right-hand side from the precomputed plan
        // (element order, identical FP expressions — see [`RhsOp`]).
        for op in &self.rhs_plan {
            match *op {
                RhsOp::Cap { g, state, a, b } => {
                    let s = self.cap_states[state].1;
                    let i_eq = match self.method {
                        Integration::BackwardEuler => g * s.v_prev,
                        Integration::Trapezoidal => g * s.v_prev + s.i_prev,
                    };
                    if a != NO_INDEX {
                        self.rhs[a] += i_eq;
                    }
                    if b != NO_INDEX {
                        self.rhs[b] -= i_eq;
                    }
                }
                RhsOp::Ind { row, r_eq, state, .. } => {
                    let s = self.ind_states[state].1;
                    let v_eq = match self.method {
                        Integration::BackwardEuler => -r_eq * s.i_prev,
                        Integration::Trapezoidal => -r_eq * s.i_prev - s.v_prev,
                    };
                    self.rhs[row] = v_eq;
                }
                RhsOp::Vsrc { row, volts } => {
                    self.rhs[row] = volts;
                }
                RhsOp::Isrc { a, b, waveform } => {
                    let i_val = waveform.value_at(t_new, &self.controls);
                    if a != NO_INDEX {
                        self.rhs[a] -= i_val;
                    }
                    if b != NO_INDEX {
                        self.rhs[b] += i_val;
                    }
                }
            }
        }
    }

    /// Gates and commits a candidate solution sitting in the scratch buffer
    /// (as left by a solve): the second phase of [`Transient::step`]. On
    /// error nothing is committed and the solver still sits at the last
    /// accepted step.
    ///
    /// # Errors
    ///
    /// Same contract as [`Transient::step`]: [`SolverError::NonFinite`] or
    /// [`SolverError::Divergence`].
    pub(crate) fn commit_step(&mut self, t_new: f64) -> Result<(), SolverError> {
        // Health gate: reject the candidate before committing anything. The
        // rhs buffer is scratch (refilled every step), so bailing out here
        // leaves the solver exactly at the last accepted state.
        let mut v_max = 0.0f64;
        for &x in &self.rhs {
            if !x.is_finite() {
                return Err(SolverError::NonFinite {
                    time_s: self.time,
                    what: "solution",
                });
            }
        }
        for &v in &self.rhs[..self.n_node_vars] {
            v_max = v_max.max(v.abs());
        }
        if v_max > self.divergence_limit_v {
            return Err(SolverError::Divergence {
                time_s: self.time,
                v_max,
                limit_v: self.divergence_limit_v,
            });
        }

        std::mem::swap(&mut self.solution, &mut self.rhs);
        self.time = t_new;

        // Update companion states from the plan (the plan lists reactive
        // elements in element order, matching cap_states/ind_states).
        let dt = self.dt;
        for op in &self.rhs_plan {
            match *op {
                RhsOp::Cap { g, state, a, b } => {
                    let s = self.cap_states[state].1;
                    let v_new = node_v(&self.solution, a) - node_v(&self.solution, b);
                    let i_new = match self.method {
                        Integration::BackwardEuler => g * (v_new - s.v_prev),
                        Integration::Trapezoidal => g * (v_new - s.v_prev) - s.i_prev,
                    };
                    self.cap_states[state].1 = CapState {
                        v_prev: v_new,
                        i_prev: i_new,
                    };
                }
                RhsOp::Ind { row, state, a, b, .. } => {
                    let v_new = node_v(&self.solution, a) - node_v(&self.solution, b);
                    self.ind_states[state].1 = IndState {
                        i_prev: self.solution[row],
                        v_prev: v_new,
                    };
                }
                _ => {}
            }
        }

        // Energy accounting from the plan (one op per element, in element
        // order, same floating-point expressions as `element_power_w`).
        let sol = &self.solution;
        for (idx, op) in self.energy_plan.iter().enumerate() {
            let p_absorbed = match *op {
                EnergyOp::Conductor { a, b, ohms } => {
                    let d = node_v(sol, a) - node_v(sol, b);
                    d * (d / ohms)
                }
                EnergyOp::Cap { a, b, state } => {
                    let d = node_v(sol, a) - node_v(sol, b);
                    d * self.cap_states[state].1.i_prev
                }
                EnergyOp::Ind { a, b, row } | EnergyOp::Vsrc { a, b, row } => {
                    let d = node_v(sol, a) - node_v(sol, b);
                    d * sol[row]
                }
                EnergyOp::Isrc { a, b, waveform } => {
                    let d = node_v(sol, a) - node_v(sol, b);
                    d * waveform.value_at(self.time, &self.controls)
                }
                EnergyOp::Recycler { top, mid, bottom, siemens } => {
                    let d = node_v(sol, top) - 2.0 * node_v(sol, mid) + node_v(sol, bottom);
                    siemens * d * d
                }
            };
            self.per_element_absorbed_j[idx] += p_absorbed * dt;
            match *op {
                EnergyOp::Conductor { .. } => {
                    self.energy.resistive_loss_j += p_absorbed * dt;
                }
                EnergyOp::Vsrc { .. } => {
                    self.energy.source_delivered_j -= p_absorbed * dt;
                }
                EnergyOp::Isrc { .. } => {
                    self.energy.load_absorbed_j += p_absorbed * dt;
                }
                EnergyOp::Recycler { .. } => {
                    self.energy.recycler_loss_j += p_absorbed * dt;
                }
                _ => {}
            }
        }
        self.energy.elapsed_s += dt;
        Ok(())
    }

    /// Advances by `n` steps.
    ///
    /// # Errors
    ///
    /// Propagates the first stepping error.
    pub fn run(&mut self, n: usize) -> Result<(), SolverError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Advances by `n` steps with [`Transient::step_with_recovery`] applied
    /// at every step, accumulating recovery activity into one report.
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable stepping error.
    pub fn run_with_recovery(
        &mut self,
        n: usize,
        policy: &RecoveryPolicy,
    ) -> Result<StepReport, SolverError> {
        let mut total = StepReport::default();
        for _ in 0..n {
            let r = self.step_with_recovery(policy)?;
            total.absorb(&r);
        }
        Ok(total)
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            time: self.time,
            solution: self.solution.clone(),
            cap_states: self.cap_states.clone(),
            ind_states: self.ind_states.clone(),
            per_element_absorbed_j: self.per_element_absorbed_j.clone(),
            energy: self.energy.clone(),
        }
    }

    fn restore(&mut self, s: &Snapshot) {
        self.time = s.time;
        self.solution.clone_from(&s.solution);
        self.cap_states.clone_from(&s.cap_states);
        self.ind_states.clone_from(&s.ind_states);
        self.per_element_absorbed_j
            .clone_from(&s.per_element_absorbed_j);
        self.energy = s.energy.clone();
    }

    /// Advances one *nominal* timestep, recovering from rejected steps under
    /// the given policy (see [`RecoveryPolicy`] for the backoff schedule).
    /// On success the solver has advanced by exactly one nominal `dt` — via
    /// substeps if recovery halved the timestep — and runs the nominal
    /// timestep and integration method again.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::RecoveryExhausted`] when the retry budget runs
    /// out (the solver is left at the last accepted state), or the original
    /// error when the policy disables retries.
    pub fn step_with_recovery(
        &mut self,
        policy: &RecoveryPolicy,
    ) -> Result<StepReport, SolverError> {
        let first = match self.step() {
            Ok(()) => return Ok(StepReport::default()),
            Err(e) => e,
        };
        if policy.max_attempts == 0 {
            return Err(first);
        }

        let snap = self.snapshot();
        let dt0 = self.dt;
        let method0 = self.method;
        let mut report = StepReport::default();
        let mut last = first;

        for attempt in 1..=policy.max_attempts {
            report.retries = attempt;
            self.restore(&snap);
            if policy.sanitize_controls {
                for c in &mut self.controls {
                    if !c.is_finite() {
                        *c = 0.0;
                        report.sanitized_controls += 1;
                    }
                }
            }
            let halvings = attempt.min(policy.max_halvings);
            let use_be = attempt >= policy.backward_euler_after;
            self.dt = dt0 / (1u64 << halvings) as f64;
            self.method = if use_be {
                Integration::BackwardEuler
            } else {
                method0
            };
            if self.refactor().is_err() {
                last = SolverError::Singular { time_s: self.time };
                continue;
            }
            let substeps = 1u64 << halvings;
            let mut accepted = true;
            for _ in 0..substeps {
                if let Err(e) = self.step() {
                    last = e;
                    accepted = false;
                    break;
                }
            }
            if accepted {
                report.used_backward_euler = use_be;
                report.halvings = halvings;
                self.dt = dt0;
                self.method = method0;
                let t = self.time;
                self.refactor()
                    .map_err(|_| SolverError::Singular { time_s: t })?;
                return Ok(report);
            }
        }

        // Budget exhausted: leave the solver at the last accepted state
        // under its nominal settings.
        self.restore(&snap);
        self.dt = dt0;
        self.method = method0;
        let t = self.time;
        self.refactor()
            .map_err(|_| SolverError::Singular { time_s: t })?;
        Err(SolverError::RecoveryExhausted {
            time_s: self.time,
            attempts: policy.max_attempts,
            last: Box::new(last),
        })
    }

    /// Cumulative energy bookkeeping since construction.
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Cumulative energy absorbed by one element, in joules (negative for
    /// elements delivering energy).
    pub fn element_absorbed_j(&self, id: ElementId) -> f64 {
        self.per_element_absorbed_j[id.index()]
    }

    /// Instantaneous power absorbed by one element, in watts.
    pub fn element_power_w(&self, id: ElementId) -> f64 {
        if let Element::ChargeRecycler {
            top,
            mid,
            bottom,
            siemens,
        } = self.netlist.elements()[id.index()]
        {
            let d = self.voltage(top) - 2.0 * self.voltage(mid) + self.voltage(bottom);
            return siemens * d * d;
        }
        let (a, b) = self.netlist.elements()[id.index()].terminals();
        (self.voltage(a) - self.voltage(b)) * self.branch_current(id)
    }

    /// Sum of `v * i` over all branches at the current instant; Tellegen's
    /// theorem says this is zero for any consistent solution, so it doubles
    /// as a solver sanity check.
    pub fn tellegen_residual_w(&self) -> f64 {
        (0..self.netlist.elements().len())
            .map(|idx| self.element_power_w(ElementId(idx)))
            .sum()
    }

    /// The underlying netlist (with current switch states).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Cached structural fingerprint of the netlist (see the field docs);
    /// kept current by every refactor.
    pub(crate) fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The active LU factorization.
    pub(crate) fn lu(&self) -> &LuFactors<f64> {
        &self.lu
    }

    /// The MNA system dimension (node variables + group-2 branches).
    pub(crate) fn system_dim(&self) -> usize {
        self.rhs.len()
    }

    /// The RHS/solution scratch buffer, for the batched gather/scatter.
    pub(crate) fn rhs_mut(&mut self) -> &mut [f64] {
        &mut self.rhs
    }

    /// Solves the stamped scratch RHS in place with the active factors —
    /// the middle phase of [`Transient::step`], used by singleton lanes in
    /// the batched path.
    pub(crate) fn solve_scratch(&mut self) {
        self.lu.solve_in_place(&mut self.rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn workspace_is_send() {
        // Worker threads in the sweep each own a long-lived workspace and
        // the scheduler may move it between threads; all of its state is
        // owned data, so `Send` must hold (and must keep holding).
        fn assert_send<T: Send>() {}
        assert_send::<SolverWorkspace>();
    }

    fn rc_circuit() -> (Netlist, NodeId) {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        net.voltage_source(vin, Netlist::GROUND, 1.0);
        net.resistor(vin, out, 1_000.0);
        net.capacitor(out, Netlist::GROUND, 1e-9);
        (net, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (net, out) = rc_circuit();
        let tau = 1e-6;
        for method in [Integration::BackwardEuler, Integration::Trapezoidal] {
            let mut sim = Transient::from_flat_start(&net, tau / 100.0, method).unwrap();
            sim.run(100).unwrap(); // t = tau
            let expected = 1.0 - (-1.0f64).exp();
            // A flat start is inconsistent with the source (the capacitor
            // current jumps at t=0), so the first step carries an O(dt)
            // error for both methods.
            let tol = 5e-3;
            assert!(
                (sim.voltage(out) - expected).abs() < tol,
                "{method:?}: got {}, want {expected}",
                sim.voltage(out)
            );
        }
    }

    #[test]
    fn starts_at_dc_equilibrium() {
        let (net, out) = rc_circuit();
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.run(50).unwrap();
        assert!((sim.voltage(out) - 1.0).abs() < 1e-9, "no start-up transient");
    }

    #[test]
    fn rl_current_rise() {
        // Series RL driven by 1 V: i(t) = (V/R)(1 - exp(-t R/L)).
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let mid = net.node("mid");
        net.voltage_source(vin, Netlist::GROUND, 1.0);
        net.resistor(vin, mid, 10.0);
        let l = net.inductor(mid, Netlist::GROUND, 1e-6);
        let tau = 1e-6 / 10.0;
        let mut sim = Transient::from_flat_start(&net, tau / 200.0, Integration::Trapezoidal).unwrap();
        sim.run(200).unwrap(); // one time constant
        let expected = 0.1 * (1.0 - (-1.0f64).exp());
        assert!((sim.branch_current(l) - expected).abs() < 1e-4);
    }

    #[test]
    fn lc_resonance_period() {
        // LC tank started with charged capacitor oscillates at
        // f = 1/(2*pi*sqrt(LC)).
        let mut net = Netlist::new();
        let top = net.node("top");
        net.capacitor(top, Netlist::GROUND, 1e-9);
        net.inductor(top, Netlist::GROUND, 1e-6);
        net.resistor(top, Netlist::GROUND, 1e9); // keep DC nonsingular
        let voltages = vec![0.0, 1.0];
        let g2 = vec![0.0];
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let period = 1.0 / f0;
        let dt = period / 400.0;
        let mut sim =
            Transient::with_initial_state(&net, dt, Integration::Trapezoidal, &voltages, &g2)
                .unwrap();
        // Find first return to positive peak by tracking zero crossings.
        let mut crossings = Vec::new();
        let mut prev = sim.voltage(top);
        for _ in 0..1200 {
            sim.step().unwrap();
            let v = sim.voltage(top);
            if prev > 0.0 && v <= 0.0 {
                crossings.push(sim.time());
            }
            prev = v;
        }
        assert!(crossings.len() >= 2);
        let measured_period = crossings[1] - crossings[0];
        assert!(
            (measured_period - period).abs() / period < 0.01,
            "measured {measured_period}, expected {period}"
        );
    }

    #[test]
    fn controlled_source_updates_take_effect() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, 1.0);
        let r = net.node("r");
        net.resistor(a, r, 1.0);
        let (_e, c) = net.controlled_current_source(r, Netlist::GROUND);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.step().unwrap();
        assert!((sim.voltage(r) - 1.0).abs() < 1e-12);
        sim.set_control(c, 0.5);
        sim.step().unwrap();
        assert!((sim.voltage(r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn switch_toggle_changes_topology() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(a, Netlist::GROUND, 1.0);
        net.resistor(a, b, 1.0);
        let sw = net.switch(b, Netlist::GROUND, 1.0, 1e9, false);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.step().unwrap();
        assert!(sim.voltage(b) > 0.99); // open: no divider
        sim.set_switch(sw, true).unwrap();
        sim.step().unwrap();
        assert!((sim.voltage(b) - 0.5).abs() < 1e-9); // closed: 1:1 divider
    }

    #[test]
    fn tellegen_residual_is_tiny() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(vin, Netlist::GROUND, 4.0);
        net.resistor(vin, a, 2.0);
        net.capacitor(a, Netlist::GROUND, 1e-9);
        net.inductor(a, b, 1e-8);
        net.resistor(b, Netlist::GROUND, 5.0);
        net.current_source(b, Netlist::GROUND, Waveform::Sine {
            offset: 0.1,
            amplitude: 0.05,
            freq_hz: 10e6,
            phase_rad: 0.0,
        });
        let mut sim = Transient::new(&net, 1e-10, Integration::Trapezoidal).unwrap();
        for _ in 0..200 {
            sim.step().unwrap();
            assert!(sim.tellegen_residual_w().abs() < 1e-9);
        }
    }

    #[test]
    fn charge_recycler_equalizes_layer_voltages() {
        // Two stacked layers from a 2 V source with unbalanced loads: the
        // recycler must pull the midpoint toward 1 V.
        let build = |g: Option<f64>| {
            let mut net = Netlist::new();
            let top = net.node("top");
            let mid = net.node("mid");
            net.voltage_source(top, Netlist::GROUND, 2.0);
            net.capacitor(top, mid, 1e-6);
            net.capacitor(mid, Netlist::GROUND, 1e-6);
            // Upper layer draws 1 A, lower layer only 0.2 A: midpoint sags.
            net.current_source(top, mid, Waveform::Dc(1.0));
            net.current_source(mid, Netlist::GROUND, Waveform::Dc(0.2));
            if let Some(g) = g {
                net.charge_recycler(top, mid, Netlist::GROUND, g);
            }
            let voltages = vec![0.0, 2.0, 1.0];
            let g2 = vec![0.0];
            let mut sim =
                Transient::with_initial_state(&net, 1e-9, Integration::Trapezoidal, &voltages, &g2)
                    .unwrap();
            sim.run(5_000).unwrap();
            (sim.voltage(mid), sim)
        };
        let (v_plain, _) = build(None);
        let (v_recycled, sim) = build(Some(10.0));
        // Without recycling the imbalance discharges the midpoint hard;
        // with it the midpoint stays near 1 V.
        assert!(
            !(0.5..=1.5).contains(&v_plain),
            "unbalanced mid drifted to {v_plain}"
        );
        assert!((v_recycled - 1.0).abs() < 0.1, "recycled mid at {v_recycled}");
        // Conversion loss is accounted and non-negative.
        assert!(sim.energy().recycler_loss_j >= 0.0);
        // Tellegen still holds with the three-terminal element.
        assert!(sim.tellegen_residual_w().abs() < 1e-6);
    }

    #[test]
    fn non_finite_control_is_rejected_atomically() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, 1.0);
        let r = net.node("r");
        net.resistor(a, r, 1.0);
        net.capacitor(r, Netlist::GROUND, 1e-9);
        let (_e, c) = net.controlled_current_source(r, Netlist::GROUND);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.run(5).unwrap();
        let v_before = sim.voltage(r);
        let t_before = sim.time();
        sim.set_control(c, f64::NAN);
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SolverError::NonFinite { .. }), "{err}");
        // Atomic rejection: nothing moved.
        assert_eq!(sim.voltage(r), v_before);
        assert_eq!(sim.time(), t_before);
        // Clearing the control lets the run resume.
        sim.set_control(c, 0.0);
        sim.step().unwrap();
        assert!(sim.time() > t_before);
    }

    #[test]
    fn recovery_sanitizes_nan_control_and_advances() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, 1.0);
        let r = net.node("r");
        net.resistor(a, r, 1.0);
        net.capacitor(r, Netlist::GROUND, 1e-9);
        let (_e, c) = net.controlled_current_source(r, Netlist::GROUND);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.set_control(c, f64::NAN);
        let report = sim.step_with_recovery(&RecoveryPolicy::default()).unwrap();
        assert!(report.recovered());
        assert_eq!(report.sanitized_controls, 1);
        assert!((sim.time() - 1e-9).abs() < 1e-18, "one nominal dt covered");
        // The sanitized control reads back as zero.
        assert_eq!(sim.control(c), 0.0);
        // Nominal settings are restored.
        assert_eq!(sim.dt(), 1e-9);
        assert_eq!(sim.method(), Integration::Trapezoidal);
    }

    #[test]
    fn recovery_disabled_policy_surfaces_error() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, 1.0);
        let r = net.node("r");
        net.resistor(a, r, 1.0);
        let (_e, c) = net.controlled_current_source(r, Netlist::GROUND);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.set_control(c, f64::INFINITY);
        let err = sim
            .step_with_recovery(&RecoveryPolicy::disabled())
            .unwrap_err();
        assert!(matches!(err, SolverError::NonFinite { .. }));
    }

    #[test]
    fn recovery_exhausts_on_unrecoverable_divergence() {
        // A persistent divergent load (finite but enormous) cannot be fixed
        // by dt halving or BE fallback: recovery must give up cleanly and
        // leave the solver at its last accepted state.
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, 1.0);
        let r = net.node("r");
        net.resistor(a, r, 1.0);
        let (_e, c) = net.controlled_current_source(r, Netlist::GROUND);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.run(3).unwrap();
        let t_before = sim.time();
        sim.set_control(c, 1e9); // drives the node to -1e9 V
        let err = sim
            .step_with_recovery(&RecoveryPolicy::default())
            .unwrap_err();
        match err {
            SolverError::RecoveryExhausted { attempts, last, .. } => {
                assert_eq!(attempts, RecoveryPolicy::default().max_attempts);
                assert!(matches!(*last, SolverError::Divergence { .. }));
            }
            other => panic!("expected RecoveryExhausted, got {other}"),
        }
        assert_eq!(sim.time(), t_before);
        assert_eq!(sim.dt(), 1e-9);
    }

    #[test]
    fn set_switch_on_non_switch_is_an_error() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, 1.0);
        let r_id = net.resistor(a, Netlist::GROUND, 1.0);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        let err = sim.set_switch(r_id, true).unwrap_err();
        assert!(matches!(err, SolverError::WrongElementKind { .. }));
    }

    #[test]
    fn recycler_conductance_can_be_retuned() {
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        net.voltage_source(top, Netlist::GROUND, 2.0);
        net.resistor(top, mid, 1.0);
        net.resistor(mid, Netlist::GROUND, 1.0);
        let rec = net.charge_recycler(top, mid, Netlist::GROUND, 10.0);
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        assert_eq!(sim.recycler_conductance(rec), Some(10.0));
        sim.set_recycler_conductance(rec, 0.0).unwrap();
        assert_eq!(sim.recycler_conductance(rec), Some(0.0));
        sim.step().unwrap();
        // Wrong kind and bad values are structured errors.
        let r_id = net.resistor(top, Netlist::GROUND, 5.0);
        let _ = r_id;
        assert!(matches!(
            sim.set_recycler_conductance(rec, -1.0).unwrap_err(),
            SolverError::InvalidParameter { .. }
        ));
        assert!(matches!(
            sim.set_recycler_conductance(rec, f64::NAN).unwrap_err(),
            SolverError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn timestep_and_method_changes_keep_physics() {
        // RC settling must reach the same steady state across a mid-run
        // dt/method change.
        let (net, out) = rc_circuit();
        let mut sim = Transient::from_flat_start(&net, 1e-8, Integration::Trapezoidal).unwrap();
        sim.run(50).unwrap();
        sim.set_timestep(5e-9).unwrap();
        sim.set_method(Integration::BackwardEuler).unwrap();
        sim.run(2_000).unwrap();
        assert!((sim.voltage(out) - 1.0).abs() < 1e-3);
        assert!(matches!(
            sim.set_timestep(-1.0).unwrap_err(),
            SolverError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn energy_bookkeeping_consistency() {
        // Pure resistive: source energy equals resistive loss + load energy.
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let a = net.node("a");
        net.voltage_source(vin, Netlist::GROUND, 2.0);
        net.resistor(vin, a, 1.0);
        net.current_source(a, Netlist::GROUND, Waveform::Dc(0.5));
        let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
        sim.run(100).unwrap();
        let e = sim.energy();
        assert!(
            (e.source_delivered_j - e.resistive_loss_j - e.load_absorbed_j).abs()
                < 1e-12 + 1e-9 * e.source_delivered_j.abs()
        );
        assert!(e.resistive_loss_j > 0.0);
        assert!(e.load_absorbed_j > 0.0);
    }
}
