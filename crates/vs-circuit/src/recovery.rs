//! Adaptive step-recovery policy for the transient solver.
//!
//! When a step is rejected (non-finite solution, divergence, singular
//! refactor), [`crate::Transient::step_with_recovery`] rolls the solver back
//! to the last accepted state and retries under progressively more
//! conservative settings:
//!
//! 1. non-finite control inputs are sanitized to zero (they cannot produce a
//!    finite solution no matter the timestep),
//! 2. the timestep is halved, once more per attempt up to
//!    [`RecoveryPolicy::max_halvings`], and the original span is covered by
//!    the matching number of substeps,
//! 3. from attempt [`RecoveryPolicy::backward_euler_after`] onward the
//!    integration falls back from trapezoidal to L-stable backward Euler,
//!    which damps the oscillatory modes that defeat the trapezoidal rule.
//!
//! On success the original timestep and method are restored, so recovery is
//! invisible except through the returned [`StepReport`]. When the budget is
//! exhausted the solver is left at the last accepted state and
//! [`crate::SolverError::RecoveryExhausted`] is returned.

/// Bounded-backoff policy for [`crate::Transient::step_with_recovery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Total retry attempts before giving up (0 disables recovery).
    pub max_attempts: u32,
    /// Maximum number of timestep halvings (dt floor = dt / 2^max_halvings).
    pub max_halvings: u32,
    /// Fall back to backward Euler from this attempt number (1-based)
    /// onward; `u32::MAX` never falls back.
    pub backward_euler_after: u32,
    /// Replace non-finite control inputs with 0 A before retrying.
    pub sanitize_controls: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 6,
            max_halvings: 4,
            backward_euler_after: 3,
            sanitize_controls: true,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never retries: errors surface immediately.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_attempts: 0,
            max_halvings: 0,
            backward_euler_after: u32::MAX,
            sanitize_controls: false,
        }
    }
}

/// What it took to accept one nominal timestep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Retry attempts consumed (0 = clean first-try step).
    pub retries: u32,
    /// Control inputs that were non-finite and sanitized to zero.
    pub sanitized_controls: u32,
    /// Whether the accepted attempt ran under backward Euler fallback.
    pub used_backward_euler: bool,
    /// Timestep halvings of the accepted attempt (substeps = 2^halvings).
    pub halvings: u32,
}

impl StepReport {
    /// True when the step needed any intervention at all.
    pub fn recovered(&self) -> bool {
        self.retries > 0
    }

    /// Merges another report into this accumulator (used by run loops that
    /// sum recovery activity over many steps).
    pub fn absorb(&mut self, other: &StepReport) {
        self.retries += other.retries;
        self.sanitized_controls += other.sanitized_controls;
        self.used_backward_euler |= other.used_backward_euler;
        self.halvings = self.halvings.max(other.halvings);
    }
}
