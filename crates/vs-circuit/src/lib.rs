//! # vs-circuit — SPICE-like circuit analysis for power-delivery networks
//!
//! This crate is the circuit-level substrate of the voltage-stacked-GPU
//! reproduction (MICRO 2018). It provides what the paper used SPICE 3 for:
//!
//! * a [`Netlist`] of linear elements (R, L, C, ideal voltage sources,
//!   time-varying and externally-controlled current sources, and two-state
//!   switches),
//! * DC operating-point analysis ([`Netlist::dc_operating_point`]),
//! * fixed-step [`Transient`] simulation with backward-Euler or trapezoidal
//!   companion models, a constant-matrix fast path (one LU factorization,
//!   O(n²) per step), and per-element energy accounting,
//! * small-signal [`AcAnalysis`] producing the complex impedance profiles
//!   used by the paper's effective-impedance reliability analysis (Fig. 3),
//! * a [`Trace`] recorder with the summary statistics the evaluation plots
//!   need.
//!
//! # Examples
//!
//! Transient response of a supply rail to a load step:
//!
//! ```
//! use vs_circuit::{Netlist, Transient, Integration, Waveform};
//!
//! let mut net = Netlist::new();
//! let board = net.node("board");
//! let die = net.node("die");
//! net.voltage_source(board, Netlist::GROUND, 1.0);
//! net.resistor(board, die, 0.001);            // PDN parasitics
//! net.capacitor(die, Netlist::GROUND, 1e-6);  // on-die decap
//! net.current_source(die, Netlist::GROUND, Waveform::Step {
//!     before: 10.0,
//!     after: 30.0,
//!     at_s: 50e-9,
//! });
//!
//! let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal)?;
//! let mut v_min: f64 = f64::INFINITY;
//! for _ in 0..200 {
//!     sim.step()?;
//!     v_min = v_min.min(sim.voltage(die));
//! }
//! assert!(v_min < 0.999); // the step causes a visible droop
//! # Ok::<(), vs_circuit::SolverError>(())
//! ```
//!
//! Transient stepping reports failures as structured [`SolverError`]s, and
//! [`Transient::step_with_recovery`] layers an adaptive retry policy
//! ([`RecoveryPolicy`]) on top — halve the timestep, sanitize non-finite
//! control inputs, fall back from trapezoidal to backward Euler — so one
//! bad input perturbs a run instead of killing it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ac;
mod batched;
mod dc;
mod error;
mod netlist;
mod recovery;
mod trace;
mod transient;

pub use ac::{log_space, AcAnalysis, AcSolution, AcStimulus};
pub use batched::{
    step_lanes_with_recovery, BatchScratch, BatchStats, BatchedTransient, LaneOutcome,
};
pub use dc::DcSolution;
pub use error::SolverError;
pub use netlist::{ControlId, Element, ElementId, Netlist, NetlistError, NodeId, Waveform};
pub use recovery::{RecoveryPolicy, StepReport};
pub use trace::{Trace, TraceSummary};
pub use transient::{EnergyReport, Integration, SolverWorkspace, Transient};
pub use vs_num::{Complex, LuFactors, Matrix, Scalar, SingularMatrixError};
