//! Circuit description: nodes, elements, and source waveforms.
//!
//! A [`Netlist`] is a flat list of two-terminal elements between nodes, in the
//! spirit of a SPICE deck. Node `0` is always ground. Analyses (DC operating
//! point, transient, AC) consume the netlist without mutating it, except for
//! switch state which is owned by the transient engine.


/// Identifier of a circuit node. [`NodeId::GROUND`] is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node, fixed at 0 V.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node (0 = ground).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an externally-controlled current value.
///
/// Controlled sources let a co-simulation (e.g. the GPU power model or a DCC
/// current DAC) update load currents every step without rebuilding the
/// netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlId(pub(crate) usize);

impl ControlId {
    /// Raw index into the control vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an element within a netlist (index into the element list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index of the element.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Time-dependent current-source waveform, in amperes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// Constant current.
    Dc(f64),
    /// `offset + amplitude * sin(2*pi*freq_hz*t + phase_rad)`.
    Sine {
        /// DC offset in amperes.
        offset: f64,
        /// Amplitude in amperes.
        amplitude: f64,
        /// Frequency in hertz.
        freq_hz: f64,
        /// Phase in radians.
        phase_rad: f64,
    },
    /// `before` until `at_s`, then `after`.
    Step {
        /// Value before the step, in amperes.
        before: f64,
        /// Value at and after the step, in amperes.
        after: f64,
        /// Step time in seconds.
        at_s: f64,
    },
    /// Periodic rectangular pulse starting at `t0_s`: `high` for `width_s`
    /// out of every `period_s`, `low` otherwise.
    Pulse {
        /// Baseline value in amperes.
        low: f64,
        /// Pulse value in amperes.
        high: f64,
        /// First rising edge, seconds.
        t0_s: f64,
        /// Pulse width, seconds.
        width_s: f64,
        /// Pulse period, seconds.
        period_s: f64,
    },
    /// Value supplied externally each step via
    /// [`Transient::set_control`](crate::Transient::set_control).
    Controlled(ControlId),
}

impl Waveform {
    /// Evaluates the waveform at time `t` given the external control vector.
    pub fn value_at(&self, t: f64, controls: &[f64]) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Sine {
                offset,
                amplitude,
                freq_hz,
                phase_rad,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * freq_hz * t + phase_rad).sin(),
            Waveform::Step { before, after, at_s } => {
                if t < at_s {
                    before
                } else {
                    after
                }
            }
            Waveform::Pulse {
                low,
                high,
                t0_s,
                width_s,
                period_s,
            } => {
                if t < t0_s {
                    low
                } else {
                    let phase = (t - t0_s) % period_s;
                    if phase < width_s {
                        high
                    } else {
                        low
                    }
                }
            }
            Waveform::Controlled(id) => controls.get(id.0).copied().unwrap_or(0.0),
        }
    }
}

/// A two-terminal circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms; must be positive and finite.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads; must be positive and finite.
        farads: f64,
    },
    /// Linear inductor between `a` and `b`. Adds a branch-current unknown.
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries; must be positive and finite.
        henries: f64,
    },
    /// Ideal DC voltage source: `V(pos) - V(neg) = volts`. Adds a
    /// branch-current unknown.
    VoltageSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source voltage in volts.
        volts: f64,
    },
    /// Current source; positive current flows *from `a` to `b` through the
    /// source*, i.e. it loads node `a` and feeds node `b`. An SM drawing
    /// power from a rail is a current source from the rail node to the
    /// return node.
    CurrentSource {
        /// Node the current is drawn from.
        a: NodeId,
        /// Node the current is delivered to.
        b: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Averaged model of one stage of a charge-recycling switched-capacitor
    /// ladder (CR-IVR): it equalizes the voltages of the two stacked layers
    /// `top–mid` and `mid–bottom` by drawing current `I = G·D` from *both*
    /// outer nodes and delivering `2·I` into the middle node, where
    /// `D = V(top) - 2·V(mid) + V(bottom)` and `G = f_sw · C_fly`.
    ///
    /// The element is passive: it dissipates `G·D²` (the switched-capacitor
    /// conversion loss) and is symmetric positive semidefinite in the MNA
    /// system.
    ChargeRecycler {
        /// Upper node of the upper layer.
        top: NodeId,
        /// Node shared by both layers.
        mid: NodeId,
        /// Lower node of the lower layer.
        bottom: NodeId,
        /// Effective conductance `f_sw · C_fly`, siemens.
        siemens: f64,
    },
    /// Ideal-ish switch modeled as a two-state resistor.
    Switch {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Closed-state resistance in ohms.
        r_on: f64,
        /// Open-state resistance in ohms.
        r_off: f64,
        /// Initial state.
        closed: bool,
    },
}

impl Element {
    /// The two terminals of the element, `(a, b)` / `(pos, neg)`.
    pub fn terminals(&self) -> (NodeId, NodeId) {
        match *self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. }
            | Element::CurrentSource { a, b, .. }
            | Element::Switch { a, b, .. } => (a, b),
            Element::VoltageSource { pos, neg, .. } => (pos, neg),
            Element::ChargeRecycler { top, bottom, .. } => (top, bottom),
        }
    }
}

/// Error produced when a netlist is malformed.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// An element references a node that was never created.
    UnknownNode {
        /// Offending element.
        element: usize,
    },
    /// A component value is non-positive or non-finite.
    InvalidValue {
        /// Offending element.
        element: usize,
        /// Human-readable description of the bad value.
        what: &'static str,
    },
    /// The assembled system matrix is singular (e.g. a floating subcircuit
    /// with no DC path to ground).
    Singular,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::UnknownNode { element } => {
                write!(f, "element {element} references a node that does not exist")
            }
            NetlistError::InvalidValue { element, what } => {
                write!(f, "element {element} has an invalid value: {what}")
            }
            NetlistError::Singular => {
                write!(f, "system matrix is singular (floating node or short loop)")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A circuit under construction or analysis.
///
/// # Examples
///
/// ```
/// use vs_circuit::{Netlist, Waveform};
///
/// let mut net = Netlist::new();
/// let vin = net.node("vin");
/// let out = net.node("out");
/// net.voltage_source(vin, Netlist::GROUND, 1.0);
/// net.resistor(vin, out, 100.0);
/// net.resistor(out, Netlist::GROUND, 100.0);
/// let dc = net.dc_operating_point()?;
/// assert!((dc.voltage(out) - 0.5).abs() < 1e-12);
/// # Ok::<(), vs_circuit::NetlistError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    elements: Vec<Element>,
    n_controls: usize,
}

impl Netlist {
    /// The ground node; always present.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["gnd".to_string()],
            elements: Vec::new(),
            n_controls: 0,
        }
    }

    /// Creates a new named node and returns its id.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.into());
        id
    }

    /// Number of nodes including ground.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node, or `"?"` if out of range.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.node_names.get(node.0).map_or("?", String::as_str)
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of externally-controlled current values declared so far.
    pub fn n_controls(&self) -> usize {
        self.n_controls
    }

    /// Adds a resistor and returns its element id.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Adds a capacitor and returns its element id.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        self.push(Element::Capacitor { a, b, farads })
    }

    /// Adds an inductor and returns its element id.
    pub fn inductor(&mut self, a: NodeId, b: NodeId, henries: f64) -> ElementId {
        self.push(Element::Inductor { a, b, henries })
    }

    /// Adds an ideal DC voltage source (`V(pos) - V(neg) = volts`).
    pub fn voltage_source(&mut self, pos: NodeId, neg: NodeId, volts: f64) -> ElementId {
        self.push(Element::VoltageSource { pos, neg, volts })
    }

    /// Adds a fixed-waveform current source flowing from `a` to `b`.
    pub fn current_source(&mut self, a: NodeId, b: NodeId, waveform: Waveform) -> ElementId {
        self.push(Element::CurrentSource { a, b, waveform })
    }

    /// Adds an externally-controlled current source flowing from `a` to `b`
    /// and returns `(element, control)` ids. The control value defaults to
    /// zero amperes until set.
    pub fn controlled_current_source(&mut self, a: NodeId, b: NodeId) -> (ElementId, ControlId) {
        let control = ControlId(self.n_controls);
        self.n_controls += 1;
        let elem = self.push(Element::CurrentSource {
            a,
            b,
            waveform: Waveform::Controlled(control),
        });
        (elem, control)
    }

    /// Adds a switch modeled as a two-state resistor.
    pub fn switch(&mut self, a: NodeId, b: NodeId, r_on: f64, r_off: f64, closed: bool) -> ElementId {
        self.push(Element::Switch {
            a,
            b,
            r_on,
            r_off,
            closed,
        })
    }

    /// Adds an averaged charge-recycling IVR stage spanning the two layers
    /// `top..mid` and `mid..bottom` with effective conductance
    /// `siemens = f_sw * C_fly`.
    pub fn charge_recycler(
        &mut self,
        top: NodeId,
        mid: NodeId,
        bottom: NodeId,
        siemens: f64,
    ) -> ElementId {
        self.push(Element::ChargeRecycler {
            top,
            mid,
            bottom,
            siemens,
        })
    }

    pub(crate) fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    fn push(&mut self, e: Element) -> ElementId {
        let id = ElementId(self.elements.len());
        self.elements.push(e);
        id
    }

    /// Validates node references and component values.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found, if any.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, e) in self.elements.iter().enumerate() {
            let (a, b) = e.terminals();
            if a.0 >= self.n_nodes() || b.0 >= self.n_nodes() {
                return Err(NetlistError::UnknownNode { element: i });
            }
            let bad = |what| Err(NetlistError::InvalidValue { element: i, what });
            match *e {
                Element::Resistor { ohms, .. } => {
                    if !(ohms.is_finite() && ohms > 0.0) {
                        return bad("resistance must be positive and finite");
                    }
                }
                Element::Capacitor { farads, .. } => {
                    if !(farads.is_finite() && farads > 0.0) {
                        return bad("capacitance must be positive and finite");
                    }
                }
                Element::Inductor { henries, .. } => {
                    if !(henries.is_finite() && henries > 0.0) {
                        return bad("inductance must be positive and finite");
                    }
                }
                Element::VoltageSource { volts, .. } => {
                    if !volts.is_finite() {
                        return bad("source voltage must be finite");
                    }
                }
                Element::Switch { r_on, r_off, .. } => {
                    if !(r_on.is_finite() && r_on > 0.0 && r_off.is_finite() && r_off > 0.0) {
                        return bad("switch resistances must be positive and finite");
                    }
                }
                Element::ChargeRecycler { mid, siemens, .. } => {
                    if mid.0 >= self.n_nodes() {
                        return Err(NetlistError::UnknownNode { element: i });
                    }
                    if !(siemens.is_finite() && siemens > 0.0) {
                        return bad("recycler conductance must be positive and finite");
                    }
                }
                Element::CurrentSource { .. } => {}
            }
        }
        Ok(())
    }

    /// Indices of elements that carry a group-2 (branch-current) unknown, in
    /// element order: voltage sources and inductors.
    pub(crate) fn group2_elements(&self) -> Vec<usize> {
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(e, Element::VoltageSource { .. } | Element::Inductor { .. })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Size of the MNA unknown vector: non-ground nodes plus group-2 branches.
    pub(crate) fn system_dim(&self) -> usize {
        (self.n_nodes() - 1) + self.group2_elements().len()
    }

    /// Maps a node to its row/column in the MNA system; ground maps to `None`.
    #[inline]
    pub(crate) fn node_var(&self, node: NodeId) -> Option<usize> {
        if node.0 == 0 {
            None
        } else {
            Some(node.0 - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_creation_and_names() {
        let mut n = Netlist::new();
        let a = n.node("a");
        assert_eq!(a.index(), 1);
        assert_eq!(n.node_name(a), "a");
        assert_eq!(n.node_name(Netlist::GROUND), "gnd");
        assert_eq!(n.n_nodes(), 2);
    }

    #[test]
    fn waveform_evaluation() {
        let w = Waveform::Step {
            before: 1.0,
            after: 2.0,
            at_s: 1e-6,
        };
        assert_eq!(w.value_at(0.0, &[]), 1.0);
        assert_eq!(w.value_at(2e-6, &[]), 2.0);

        let p = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            t0_s: 0.0,
            width_s: 1e-9,
            period_s: 4e-9,
        };
        assert_eq!(p.value_at(0.5e-9, &[]), 1.0);
        assert_eq!(p.value_at(2.0e-9, &[]), 0.0);
        assert_eq!(p.value_at(4.5e-9, &[]), 1.0);

        let c = Waveform::Controlled(ControlId(1));
        assert_eq!(c.value_at(0.0, &[5.0, 7.0]), 7.0);
        assert_eq!(c.value_at(0.0, &[]), 0.0);

        let s = Waveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            freq_hz: 1.0,
            phase_rad: 0.0,
        };
        assert!((s.value_at(0.25, &[]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.resistor(a, Netlist::GROUND, -5.0);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::InvalidValue { element: 0, .. })
        ));
    }

    #[test]
    fn validation_catches_unknown_node() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.resistor(a, NodeId(42), 1.0);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::UnknownNode { element: 0 })
        ));
    }

    #[test]
    fn group2_ordering() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.resistor(a, b, 1.0);
        n.voltage_source(a, Netlist::GROUND, 1.0);
        n.inductor(a, b, 1e-9);
        assert_eq!(n.group2_elements(), vec![1, 2]);
        assert_eq!(n.system_dim(), 2 + 2);
    }

    #[test]
    fn controlled_source_ids_increment() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let (_, c0) = n.controlled_current_source(a, Netlist::GROUND);
        let (_, c1) = n.controlled_current_source(a, Netlist::GROUND);
        assert_eq!(c0.index(), 0);
        assert_eq!(c1.index(), 1);
        assert_eq!(n.n_controls(), 2);
    }
}
