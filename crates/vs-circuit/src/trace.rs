//! Time-series recording and summary statistics for simulation waveforms.


/// A recorded waveform: monotonically increasing sample times plus values.
///
/// # Examples
///
/// ```
/// use vs_circuit::Trace;
///
/// let mut t = Trace::new("v(out)");
/// t.push(0.0, 1.0);
/// t.push(1e-9, 0.8);
/// t.push(2e-9, 1.1);
/// assert_eq!(t.min(), 0.8);
/// assert_eq!(t.max(), 1.1);
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Trace {
    /// Creates an empty trace with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Display name of the trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// Times must be non-decreasing (checked by a `debug_assert!`): the
    /// time axis is what plots and windowed statistics index by. Values may
    /// arrive in any order — quantile helpers sort a copy internally.
    pub fn push(&mut self, time_s: f64, value: f64) {
        debug_assert!(
            self.times.last().is_none_or(|&last| time_s >= last),
            "trace '{}': sample time {time_s} precedes previous {:?}",
            self.name,
            self.times.last()
        );
        self.times.push(time_s);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample times, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Last recorded value, or `None` when empty.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Minimum value; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum value; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Standard deviation (population); 0.0 when fewer than 2 samples.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Number of non-finite samples (NaN or infinity) recorded so far.
    /// These are excluded from quantile statistics; a nonzero count usually
    /// means an upstream solver produced garbage that should be triaged.
    pub fn non_finite_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_finite()).count()
    }

    /// Value quantile in `[0, 1]` using nearest-rank on a sorted copy;
    /// 0.0 when empty.
    ///
    /// Non-finite samples are filtered out before ranking (`total_cmp`
    /// orders NaN, but a quantile over garbage is meaningless); when any
    /// are dropped a counted warning goes to stderr once per call. If
    /// *every* sample is non-finite the result is 0.0.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self
            .values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        let dropped = self.values.len() - sorted.len();
        if dropped > 0 {
            eprintln!(
                "warning: trace '{}': ignoring {dropped} non-finite of {} samples in quantile",
                self.name,
                self.values.len()
            );
        }
        if sorted.is_empty() {
            return 0.0;
        }
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// Five-number summary plus mean, handy for box plots (Fig. 11).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            min: self.min(),
            q1: self.quantile(0.25),
            median: self.quantile(0.5),
            q3: self.quantile(0.75),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

impl Extend<(f64, f64)> for Trace {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

/// Box-plot-style summary of a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        let mut t = Trace::new("ramp");
        for i in 0..101 {
            t.push(i as f64, i as f64);
        }
        t
    }

    #[test]
    fn stats_on_ramp() {
        let t = ramp();
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 100.0);
        assert_eq!(t.mean(), 50.0);
        assert_eq!(t.quantile(0.5), 50.0);
        assert_eq!(t.quantile(0.0), 0.0);
        assert_eq!(t.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.std_dev(), 0.0);
        assert_eq!(t.last(), None);
    }

    #[test]
    fn summary_orders() {
        let s = ramp().summary();
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new("x");
        t.extend([(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.last(), Some(2.0));
    }

    #[test]
    fn quantile_survives_non_finite_samples() {
        let mut t = Trace::new("dirty");
        for i in 0..10 {
            t.push(i as f64, i as f64);
        }
        t.push(10.0, f64::NAN);
        t.push(11.0, f64::INFINITY);
        t.push(12.0, f64::NEG_INFINITY);
        assert_eq!(t.non_finite_count(), 3);
        // Quantiles rank only the 10 finite samples 0..=9.
        assert_eq!(t.quantile(0.0), 0.0);
        assert_eq!(t.quantile(1.0), 9.0);
        assert_eq!(t.quantile(0.5), 5.0);
    }

    #[test]
    fn quantile_of_all_nan_is_zero() {
        let mut t = Trace::new("all-nan");
        t.push(0.0, f64::NAN);
        t.push(1.0, f64::NAN);
        assert_eq!(t.quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_correct_on_unsorted_values() {
        // Values arrive in scrambled order (a realistic voltage waveform is
        // anything but monotonic); quantiles must not depend on push order.
        let mut t = Trace::new("scrambled");
        for (i, v) in [7.0, 2.0, 9.0, 0.0, 5.0, 3.0, 8.0, 1.0, 6.0, 4.0]
            .into_iter()
            .enumerate()
        {
            t.push(i as f64, v);
        }
        assert_eq!(t.quantile(0.0), 0.0);
        assert_eq!(t.quantile(0.5), 5.0);
        assert_eq!(t.quantile(1.0), 9.0);
        let s = t.summary();
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "precedes previous")]
    fn decreasing_time_is_rejected_in_debug() {
        let mut t = Trace::new("backwards");
        t.push(1.0, 0.0);
        t.push(0.5, 0.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        let mut t = Trace::new("c");
        for i in 0..10 {
            t.push(i as f64, 3.0);
        }
        assert!(t.std_dev().abs() < 1e-12);
    }
}
