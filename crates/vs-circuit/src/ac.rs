//! Small-signal AC (frequency-domain) analysis.
//!
//! For each angular frequency the complex modified-nodal-analysis system
//! `Y(jw) x = b` is assembled and solved exactly. Independent sources are
//! suppressed (voltage sources become shorts, current sources become opens)
//! and the caller injects its own small-signal current stimuli. This is how
//! the effective-impedance profiles of the paper's Fig. 3 are produced: the
//! impedance "seen" by a set of loads is the voltage response to a 1 A
//! stimulus distributed over those loads.

use vs_num::Complex;
use vs_num::{LuFactors, Matrix};
use crate::netlist::{Element, Netlist, NetlistError, NodeId};

/// A small-signal current injection: `amps` flowing from node `from` to node
/// `to` through the stimulus source (i.e. loading `from`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcStimulus {
    /// Node the stimulus draws current from.
    pub from: NodeId,
    /// Node the stimulus returns current to.
    pub to: NodeId,
    /// Stimulus magnitude in amperes (phasor, zero phase).
    pub amps: f64,
}

/// Result of one AC solve: complex node voltages.
#[derive(Debug, Clone)]
pub struct AcSolution {
    voltages: Vec<Complex>,
}

impl AcSolution {
    /// Complex phasor voltage of `node`.
    pub fn voltage(&self, node: NodeId) -> Complex {
        if node.index() == 0 {
            Complex::ZERO
        } else {
            self.voltages[node.index() - 1]
        }
    }

    /// Complex voltage difference `V(a) - V(b)`.
    pub fn voltage_between(&self, a: NodeId, b: NodeId) -> Complex {
        self.voltage(a) - self.voltage(b)
    }
}

/// Frequency-domain analyzer over a fixed netlist.
///
/// # Examples
///
/// ```
/// use vs_circuit::{Netlist, AcAnalysis};
///
/// // Impedance of a parallel RC is R at DC and rolls off at high frequency.
/// let mut net = Netlist::new();
/// let n = net.node("n");
/// net.resistor(n, Netlist::GROUND, 50.0);
/// net.capacitor(n, Netlist::GROUND, 1e-9);
/// let ac = AcAnalysis::new(&net)?;
/// let z_low = ac.impedance(1.0, n, Netlist::GROUND)?;
/// let z_high = ac.impedance(1e9, n, Netlist::GROUND)?;
/// assert!((z_low.abs() - 50.0).abs() < 0.1);
/// assert!(z_high.abs() < 1.0);
/// # Ok::<(), vs_circuit::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct AcAnalysis {
    netlist: Netlist,
    n_node_vars: usize,
    group2: Vec<usize>,
}

impl AcAnalysis {
    /// Creates an analyzer for the given netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the netlist is malformed.
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        Ok(AcAnalysis {
            netlist: netlist.clone(),
            n_node_vars: netlist.n_nodes() - 1,
            group2: netlist.group2_elements(),
        })
    }

    fn assemble(&self, freq_hz: f64) -> Matrix<Complex> {
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let dim = self.n_node_vars + self.group2.len();
        let mut a = Matrix::zeros(dim, dim);
        let net = &self.netlist;
        let stamp_y = |a: &mut Matrix<Complex>, na: NodeId, nb: NodeId, y: Complex| {
            if let Some(i) = net.node_var(na) {
                a[(i, i)] += y;
            }
            if let Some(j) = net.node_var(nb) {
                a[(j, j)] += y;
            }
            if let (Some(i), Some(j)) = (net.node_var(na), net.node_var(nb)) {
                a[(i, j)] -= y;
                a[(j, i)] -= y;
            }
        };
        for (idx, e) in net.elements().iter().enumerate() {
            match *e {
                Element::Resistor { a: na, b: nb, ohms } => {
                    stamp_y(&mut a, na, nb, Complex::from_re(1.0 / ohms));
                }
                Element::Switch {
                    a: na,
                    b: nb,
                    r_on,
                    r_off,
                    closed,
                } => {
                    let r = if closed { r_on } else { r_off };
                    stamp_y(&mut a, na, nb, Complex::from_re(1.0 / r));
                }
                Element::Capacitor { a: na, b: nb, farads } => {
                    stamp_y(&mut a, na, nb, Complex::new(0.0, omega * farads));
                }
                Element::Inductor { a: na, b: nb, henries } => {
                    // Group-2: V(a) - V(b) - jwL * i = 0.
                    let k = self.group2_row(idx);
                    if let Some(i) = net.node_var(na) {
                        a[(k, i)] += Complex::ONE;
                        a[(i, k)] += Complex::ONE;
                    }
                    if let Some(j) = net.node_var(nb) {
                        a[(k, j)] -= Complex::ONE;
                        a[(j, k)] -= Complex::ONE;
                    }
                    a[(k, k)] -= Complex::new(0.0, omega * henries);
                }
                Element::VoltageSource { pos, neg, .. } => {
                    // AC-shorted: V(pos) - V(neg) = 0.
                    let k = self.group2_row(idx);
                    if let Some(i) = net.node_var(pos) {
                        a[(k, i)] += Complex::ONE;
                        a[(i, k)] += Complex::ONE;
                    }
                    if let Some(j) = net.node_var(neg) {
                        a[(k, j)] -= Complex::ONE;
                        a[(j, k)] -= Complex::ONE;
                    }
                }
                Element::ChargeRecycler {
                    top,
                    mid,
                    bottom,
                    siemens,
                } => {
                    let g = siemens;
                    let entries = [
                        (top, top, g),
                        (top, mid, -2.0 * g),
                        (top, bottom, g),
                        (mid, top, -2.0 * g),
                        (mid, mid, 4.0 * g),
                        (mid, bottom, -2.0 * g),
                        (bottom, top, g),
                        (bottom, mid, -2.0 * g),
                        (bottom, bottom, g),
                    ];
                    for (r, c, v) in entries {
                        if let (Some(i), Some(j)) = (net.node_var(r), net.node_var(c)) {
                            a[(i, j)] += Complex::from_re(v);
                        }
                    }
                }
                Element::CurrentSource { .. } => {} // open in small-signal
            }
        }
        a
    }

    #[inline]
    fn group2_row(&self, element_idx: usize) -> usize {
        self.n_node_vars
            + self
                .group2
                .iter()
                .position(|&g| g == element_idx)
                .expect("element is group-2")
    }

    /// Solves the network at `freq_hz` with the given current stimuli.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Singular`] if the complex system is singular
    /// at this frequency.
    pub fn solve(&self, freq_hz: f64, stimuli: &[AcStimulus]) -> Result<AcSolution, NetlistError> {
        let a = self.assemble(freq_hz);
        let lu = LuFactors::factor(&a).map_err(|_| NetlistError::Singular)?;
        let dim = self.n_node_vars + self.group2.len();
        let mut rhs = vec![Complex::ZERO; dim];
        for s in stimuli {
            if let Some(i) = self.netlist.node_var(s.from) {
                rhs[i] -= Complex::from_re(s.amps);
            }
            if let Some(j) = self.netlist.node_var(s.to) {
                rhs[j] += Complex::from_re(s.amps);
            }
        }
        lu.solve_in_place(&mut rhs);
        Ok(AcSolution {
            voltages: rhs[..self.n_node_vars].to_vec(),
        })
    }

    /// Driving-point impedance between two nodes at `freq_hz`: injects 1 A
    /// from `b` into `a` and reports `(V(a) - V(b))`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Singular`] if the system is singular.
    pub fn impedance(&self, freq_hz: f64, a: NodeId, b: NodeId) -> Result<Complex, NetlistError> {
        // A stimulus "from b to a" delivers current into node a.
        let sol = self.solve(
            freq_hz,
            &[AcStimulus {
                from: b,
                to: a,
                amps: 1.0,
            }],
        )?;
        Ok(sol.voltage_between(a, b))
    }

    /// Transfer impedance: response `V(sense_a) - V(sense_b)` to a unit
    /// current distributed over `stimuli` (whose amps are used as weights).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Singular`] if the system is singular.
    pub fn transfer_impedance(
        &self,
        freq_hz: f64,
        stimuli: &[AcStimulus],
        sense_a: NodeId,
        sense_b: NodeId,
    ) -> Result<Complex, NetlistError> {
        let sol = self.solve(freq_hz, stimuli)?;
        Ok(sol.voltage_between(sense_a, sense_b))
    }

    /// Sweeps `impedance` magnitudes over logarithmically-spaced frequencies.
    ///
    /// # Errors
    ///
    /// Returns the first solve error.
    pub fn impedance_sweep(
        &self,
        f_start_hz: f64,
        f_stop_hz: f64,
        points: usize,
        a: NodeId,
        b: NodeId,
    ) -> Result<Vec<(f64, f64)>, NetlistError> {
        let mut out = Vec::with_capacity(points);
        for f in log_space(f_start_hz, f_stop_hz, points) {
            out.push((f, self.impedance(f, a, b)?.abs()));
        }
        Ok(out)
    }
}

/// `points` logarithmically spaced values from `start` to `stop` inclusive.
///
/// # Panics
///
/// Panics if `start` or `stop` is not positive or `points == 0`.
pub fn log_space(start: f64, stop: f64, points: usize) -> Vec<f64> {
    assert!(start > 0.0 && stop > 0.0 && points > 0);
    if points == 1 {
        return vec![start];
    }
    let l0 = start.ln();
    let l1 = stop.ln();
    (0..points)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_impedance_is_flat() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.resistor(n, Netlist::GROUND, 42.0);
        let ac = AcAnalysis::new(&net).unwrap();
        for f in [1.0, 1e3, 1e6, 1e9] {
            let z = ac.impedance(f, n, Netlist::GROUND).unwrap();
            assert!((z.abs() - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capacitor_impedance_matches_analytic() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.capacitor(n, Netlist::GROUND, 1e-9);
        net.resistor(n, Netlist::GROUND, 1e12); // DC path
        let ac = AcAnalysis::new(&net).unwrap();
        let f = 1e6;
        let z = ac.impedance(f, n, Netlist::GROUND).unwrap();
        let expected = 1.0 / (2.0 * std::f64::consts::PI * f * 1e-9);
        assert!((z.abs() - expected).abs() / expected < 1e-9);
        // Capacitive phase is -90 degrees.
        assert!((z.arg() + std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn inductor_impedance_matches_analytic() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.inductor(n, Netlist::GROUND, 1e-6);
        let ac = AcAnalysis::new(&net).unwrap();
        let f = 1e6;
        let z = ac.impedance(f, n, Netlist::GROUND).unwrap();
        let expected = 2.0 * std::f64::consts::PI * f * 1e-6;
        assert!((z.abs() - expected).abs() / expected < 1e-9);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn series_rlc_resonance() {
        // Parallel RLC tank: impedance peaks (up to R) at
        // f0 = 1/(2 pi sqrt(LC)) and is shorted by L below / C above.
        let mut net = Netlist::new();
        let n = net.node("n");
        net.resistor(n, Netlist::GROUND, 100.0);
        net.inductor(n, Netlist::GROUND, 1e-7);
        net.capacitor(n, Netlist::GROUND, 1e-9);
        let ac = AcAnalysis::new(&net).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-7f64 * 1e-9).sqrt());
        let z0 = ac.impedance(f0, n, Netlist::GROUND).unwrap().abs();
        let z_lo = ac.impedance(f0 / 10.0, n, Netlist::GROUND).unwrap().abs();
        let z_hi = ac.impedance(f0 * 10.0, n, Netlist::GROUND).unwrap().abs();
        // At resonance the tank impedance peaks (up to R); off resonance the
        // reactive branches short it out.
        assert!(z0 > 5.0 * z_lo);
        assert!(z0 > 5.0 * z_hi);
        assert!((z0 - 100.0).abs() / 100.0 < 0.01);
    }

    #[test]
    fn voltage_source_is_ac_short() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.voltage_source(n, Netlist::GROUND, 3.3);
        net.resistor(n, Netlist::GROUND, 10.0);
        let ac = AcAnalysis::new(&net).unwrap();
        let z = ac.impedance(1e6, n, Netlist::GROUND).unwrap();
        assert!(z.abs() < 1e-9, "ideal source should short the node");
    }

    #[test]
    fn log_space_endpoints() {
        let v = log_space(1.0, 100.0, 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 10.0).abs() < 1e-9);
        assert!((v[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_impedance_reciprocity() {
        // For a reciprocal (passive RLC) network, Z(i->j) == Z(j->i).
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, Netlist::GROUND, 3.0);
        net.resistor(b, Netlist::GROUND, 7.0);
        net.resistor(a, b, 2.0);
        net.capacitor(a, Netlist::GROUND, 1e-9);
        net.inductor(a, b, 1e-8);
        let ac = AcAnalysis::new(&net).unwrap();
        let f = 33e6;
        let zab = ac
            .transfer_impedance(
                f,
                &[AcStimulus {
                    from: Netlist::GROUND,
                    to: a,
                    amps: 1.0,
                }],
                b,
                Netlist::GROUND,
            )
            .unwrap();
        let zba = ac
            .transfer_impedance(
                f,
                &[AcStimulus {
                    from: Netlist::GROUND,
                    to: b,
                    amps: 1.0,
                }],
                a,
                Netlist::GROUND,
            )
            .unwrap();
        assert!((zab - zba).abs() < 1e-9);
    }
}
