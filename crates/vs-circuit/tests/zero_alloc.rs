//! Steady-state transient stepping must perform **zero heap allocations per
//! cycle** — the acceptance bar for the batched co-simulation hot path. A
//! counting global allocator wraps the system allocator; after warm-up, a
//! window of `step()` / `step_with_recovery()` calls must leave the
//! allocation counter untouched.
//!
//! The netlist below is a miniature of the stacked power-delivery system the
//! co-simulation drives: a stacked source, per-layer decap + load current
//! sources (externally controlled), a charge-recycler ladder, an inductive
//! supply path, and a switch — every element kind the hot path stamps.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vs_circuit::{Integration, Netlist, RecoveryPolicy, SolverWorkspace, Transient, Waveform};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A two-layer stacked PDN in miniature, with externally controlled loads.
fn stacked_netlist() -> (Netlist, Vec<vs_circuit::ControlId>, vs_circuit::NodeId) {
    let mut net = Netlist::new();
    let top = net.node("top");
    let mid = net.node("mid");
    let sup = net.node("sup");
    net.voltage_source(sup, Netlist::GROUND, 2.0);
    net.inductor(sup, top, 1e-9);
    net.resistor(sup, top, 0.05);
    net.capacitor(top, mid, 1e-6);
    net.capacitor(mid, Netlist::GROUND, 1e-6);
    net.charge_recycler(top, mid, Netlist::GROUND, 5.0);
    net.switch(top, mid, 1e6, 1e9, false);
    net.current_source(
        top,
        mid,
        Waveform::Sine { offset: 0.4, amplitude: 0.1, freq_hz: 5e6, phase_rad: 0.0 },
    );
    let mut controls = Vec::new();
    let (_, c0) = net.controlled_current_source(top, mid);
    let (_, c1) = net.controlled_current_source(mid, Netlist::GROUND);
    controls.push(c0);
    controls.push(c1);
    (net, controls, top)
}

#[test]
fn steady_state_stepping_is_allocation_free() {
    let (net, controls, _) = stacked_netlist();
    let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
    // Warm-up: first steps may lazily touch capacity.
    for i in 0..64 {
        let x = 0.3 + 0.05 * f64::from(i % 7);
        sim.set_control(controls[0], x);
        sim.set_control(controls[1], 0.5 - 0.04 * f64::from(i % 5));
        sim.step().unwrap();
    }
    let before = allocs();
    for i in 0..1_000 {
        let x = 0.3 + 0.05 * f64::from(i % 7);
        sim.set_control(controls[0], x);
        sim.set_control(controls[1], 0.5 - 0.04 * f64::from(i % 5));
        sim.step().unwrap();
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state step() allocated {} times over 1000 cycles",
        after - before
    );
}

#[test]
fn recovery_wrapper_success_path_is_allocation_free() {
    let (net, controls, _) = stacked_netlist();
    let mut sim = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
    let policy = RecoveryPolicy::default();
    for _ in 0..64 {
        sim.set_control(controls[0], 0.4);
        sim.set_control(controls[1], 0.4);
        sim.step_with_recovery(&policy).unwrap();
    }
    let before = allocs();
    for _ in 0..1_000 {
        sim.step_with_recovery(&policy).unwrap();
    }
    assert_eq!(allocs() - before, 0, "recovery success path allocated");
}

#[test]
fn workspace_round_trip_reuses_buffers_and_dc_cache() {
    let (net, controls, top) = stacked_netlist();
    // First run warms the workspace (and populates the DC cache).
    let mut sim = Transient::new_in(&net, 1e-9, Integration::Trapezoidal, SolverWorkspace::new())
        .unwrap();
    sim.set_control(controls[0], 0.4);
    sim.run(16).unwrap();
    let v_first = sim.voltage(top);
    let ws = sim.into_workspace();
    assert_eq!(ws.dc_cache_hits(), 0);
    assert_eq!(ws.runs(), 1);

    // Second run through the same workspace: DC comes from cache, results
    // are bit-identical to a fresh solver.
    let mut reused = Transient::new_in(&net, 1e-9, Integration::Trapezoidal, ws).unwrap();
    let mut fresh = Transient::new(&net, 1e-9, Integration::Trapezoidal).unwrap();
    reused.set_control(controls[0], 0.4);
    fresh.set_control(controls[0], 0.4);
    reused.run(16).unwrap();
    fresh.run(16).unwrap();
    assert_eq!(reused.voltage(top), v_first);
    assert_eq!(reused.voltage(top), fresh.voltage(top));
    assert_eq!(reused.energy().resistive_loss_j, fresh.energy().resistive_loss_j);
    let ws = reused.into_workspace();
    assert_eq!(ws.dc_cache_hits(), 1);
    assert_eq!(ws.runs(), 2);
}
