//! Shared harness for the batched-solver test suite: a parameter-variant
//! miniature of the stacked PDN rig, seeded parameter/control schedules
//! (`derive_seed`-style, mirroring `vs_core::derive_seed` — this crate sits
//! below `vs-core`, so the few lines are inlined), and a bitwise trajectory
//! recorder.

#![allow(dead_code)]

use vs_circuit::{ControlId, Integration, Netlist, NodeId, Transient, Waveform};

/// FNV-1a fold + SplitMix64 finalizer, the same construction as
/// `vs_core::derive_seed`.
pub fn derive_seed(base: u64, domain: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
    for b in domain.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix(h)
}

/// One SplitMix64 step; also the per-draw generator for the schedules.
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a seed (stateless: hash the inputs).
pub fn unit(seed: u64) -> f64 {
    (splitmix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// The nominal timestep every variant runs at.
pub const DT: f64 = 1e-9;

/// Parameters of one rig variant. `decap_scale`/`recycler_g` perturb element
/// values (different netlist fingerprint, same symbolic structure);
/// `extra_strap` adds a resistor (different structure entirely, forcing the
/// lane into a singleton solve); the control schedule always varies by
/// variant.
#[derive(Debug, Clone, Copy)]
pub struct VariantSpec {
    pub decap_scale: f64,
    pub recycler_g: f64,
    pub load_offset: f64,
    pub extra_strap: bool,
    /// Seed folded into the per-step control schedule.
    pub schedule_seed: u64,
}

impl VariantSpec {
    /// A variant that differs from the batch only in its control schedule
    /// (identical netlist ⇒ shared-factor fast path).
    pub fn control_only(seed: u64, i: u64) -> Self {
        VariantSpec {
            decap_scale: 1.0,
            recycler_g: 5.0,
            load_offset: 0.4,
            extra_strap: false,
            schedule_seed: derive_seed(seed, "schedule").wrapping_add(i),
        }
    }

    /// A variant with perturbed element values (per-lane numeric LU over the
    /// shared structure).
    pub fn value_variant(seed: u64, i: u64) -> Self {
        let s = derive_seed(seed, "values").wrapping_add(i.wrapping_mul(0x9e37));
        VariantSpec {
            decap_scale: 0.85 + 0.3 * unit(s),
            recycler_g: 3.5 + 3.0 * unit(s ^ 1),
            load_offset: 0.3 + 0.2 * unit(s ^ 2),
            extra_strap: false,
            schedule_seed: derive_seed(seed, "schedule").wrapping_add(i),
        }
    }

    /// A topology variant: an extra strap resistor changes the sparsity
    /// pattern, so this lane can never share a solve.
    pub fn topology_variant(seed: u64, i: u64) -> Self {
        let mut v = Self::value_variant(seed, i);
        v.extra_strap = true;
        v
    }
}

/// A built variant: the solver plus the handles the recorder needs.
pub struct Rig {
    pub sim: Transient,
    pub controls: Vec<ControlId>,
    pub top: NodeId,
    pub mid: NodeId,
}

/// Builds the two-layer miniature stacked PDN (same shape as the zero-alloc
/// hot-path test: stacked source, inductive supply, per-layer decap +
/// controlled loads, recycler ladder) for one variant.
pub fn build_rig(spec: &VariantSpec) -> Rig {
    let mut net = Netlist::new();
    let top = net.node("top");
    let mid = net.node("mid");
    let sup = net.node("sup");
    net.voltage_source(sup, Netlist::GROUND, 2.0);
    net.inductor(sup, top, 1e-9);
    net.resistor(sup, top, 0.05);
    net.capacitor(top, mid, 1e-6 * spec.decap_scale);
    net.capacitor(mid, Netlist::GROUND, 1e-6 * spec.decap_scale);
    net.charge_recycler(top, mid, Netlist::GROUND, spec.recycler_g);
    net.current_source(
        top,
        mid,
        Waveform::Sine {
            offset: spec.load_offset,
            amplitude: 0.1,
            freq_hz: 5e6,
            phase_rad: 0.0,
        },
    );
    if spec.extra_strap {
        // An extra filtered strap node changes the system dimension, so this
        // variant can never share a solve with the others.
        let strap = net.node("strap");
        net.resistor(sup, strap, 0.5);
        net.capacitor(strap, Netlist::GROUND, 1e-7);
    }
    let (_, c0) = net.controlled_current_source(top, mid);
    let (_, c1) = net.controlled_current_source(mid, Netlist::GROUND);
    let sim = Transient::new(&net, DT, Integration::Trapezoidal).expect("variant rig builds");
    Rig { sim, controls: vec![c0, c1], top, mid }
}

/// The deterministic per-step control value for a variant: bounded, well
/// away from divergence, different for every (variant, control, step).
pub fn control_value(spec: &VariantSpec, ctrl: usize, step: u64) -> f64 {
    let s = spec
        .schedule_seed
        .wrapping_add(step.wrapping_mul(0x2545_f491_4f6c_dd1d))
        .wrapping_add(ctrl as u64);
    0.25 + 0.3 * unit(s)
}

/// Applies the schedule for `step` to a rig's controls.
pub fn apply_controls(rig: &mut Rig, spec: &VariantSpec, step: u64) {
    for (k, &c) in rig.controls.iter().enumerate() {
        rig.sim.set_control(c, control_value(spec, k, step));
    }
}

/// Appends the lane's observable state to a bitwise trajectory: time, two
/// node voltages, and the four energy categories. Equal vectors ⇒ the lane
/// took a bit-identical path.
pub fn record(traj: &mut Vec<u64>, rig: &Rig) {
    let e = rig.sim.energy();
    for v in [
        rig.sim.time(),
        rig.sim.voltage(rig.top),
        rig.sim.voltage(rig.mid),
        e.resistive_loss_j,
        e.source_delivered_j,
        e.load_absorbed_j,
        e.recycler_loss_j,
    ] {
        traj.push(v.to_bits());
    }
}
