//! Seeded fuzz of the active-lane mask: random batches under random
//! divergence schedules (same `derive_seed` construction as the diff-engine
//! fuzzers), asserting the mask invariants directly:
//!
//! * a lane is never advanced while masked out — a retired lane's
//!   observables stay bit-frozen forever,
//! * every masked lane rejoins within its recovery budget — a recoverable
//!   fault always yields `Stepped` with a recovery report in the same
//!   shared step,
//! * the stats ledger balances: every mask exit either rejoined or retired.

mod common;

use common::{build_rig, control_value, derive_seed, splitmix, unit, VariantSpec};
use vs_circuit::{BatchedTransient, LaneOutcome, RecoveryPolicy, Transient};

const ROUNDS: u64 = 24;
const STEPS: u64 = 40;

/// One fuzzed divergence schedule: recoverable NaN injections plus at most
/// one fatal overload.
struct Schedule {
    /// `nan[lane][step]`
    nan: Vec<Vec<bool>>,
    fatal: Option<(usize, u64)>,
}

impl Schedule {
    fn draw(seed: u64, n_lanes: usize) -> Self {
        let mut nan = vec![vec![false; STEPS as usize]; n_lanes];
        for (lane, row) in nan.iter_mut().enumerate() {
            for (step, slot) in row.iter_mut().enumerate() {
                let s = derive_seed(seed, "nan")
                    .wrapping_add((lane as u64) << 32)
                    .wrapping_add(step as u64);
                // Leave the first steps clean so recovery starts from a
                // settled state, then ~6% fault density.
                *slot = step >= 4 && unit(s) < 0.06;
            }
        }
        let fatal = if seed.is_multiple_of(3) {
            let lane = (splitmix(seed ^ 0xF417) % n_lanes as u64) as usize;
            let step = 8 + splitmix(seed ^ 0x57E9) % (STEPS - 10);
            nan[lane][step as usize] = false;
            Some((lane, step))
        } else {
            None
        };
        Schedule { nan, fatal }
    }

    fn injection(&self, lane: usize, step: u64) -> Option<f64> {
        if self.fatal == Some((lane, step)) {
            return Some(1e9);
        }
        if self.nan[lane][step as usize] {
            return Some(f64::NAN);
        }
        None
    }
}

fn fuzz_round(round: u64) {
    let seed = derive_seed(0xBA7C_4ED0, "mask-fuzz").wrapping_add(round);
    let n_lanes = 2 + (splitmix(seed) % 7) as usize; // 2..=8
    let specs: Vec<VariantSpec> = (0..n_lanes as u64)
        .map(|i| match splitmix(seed.wrapping_add(i)) % 3 {
            0 => VariantSpec::control_only(seed, i),
            1 => VariantSpec::value_variant(seed, i),
            _ => VariantSpec::topology_variant(seed, i),
        })
        .collect();
    let schedule = Schedule::draw(seed, n_lanes);
    let policy = RecoveryPolicy::default();

    let mut handles = Vec::new();
    let mut lanes: Vec<Transient> = Vec::new();
    for spec in &specs {
        let rig = build_rig(spec);
        handles.push((rig.controls, rig.top, rig.mid));
        lanes.push(rig.sim);
    }
    let mut batch = BatchedTransient::new(lanes);

    let observe = |sim: &Transient, top, mid| -> [u64; 3] {
        [sim.time().to_bits(), sim.voltage(top).to_bits(), sim.voltage(mid).to_bits()]
    };

    let mut frozen: Vec<Option<[u64; 3]>> = vec![None; n_lanes];
    let mut expected_lane_steps = 0u64;
    let mut expected_retired = 0u64;
    let mut nan_hits = 0u64;

    for step in 0..STEPS {
        let mut injected_nan = vec![false; n_lanes];
        for (i, spec) in specs.iter().enumerate() {
            if !batch.is_active(i) {
                continue;
            }
            expected_lane_steps += 1;
            let (controls, _, _) = &handles[i];
            for (k, &c) in controls.iter().enumerate() {
                batch.lane_mut(i).set_control(c, control_value(spec, k, step));
            }
            if let Some(x) = schedule.injection(i, step) {
                batch.lane_mut(i).set_control(controls[0], x);
                if x.is_nan() {
                    injected_nan[i] = true;
                    nan_hits += 1;
                }
            }
        }
        let before: Vec<[u64; 3]> = (0..n_lanes)
            .map(|i| observe(batch.lane(i), handles[i].1, handles[i].2))
            .collect();

        // Summarize outcomes into owned values so the batch can be
        // re-borrowed for observation below.
        let outcomes: Vec<Option<Option<vs_circuit::StepReport>>> = batch
            .step_all(&policy)
            .iter()
            .map(|o| match o {
                LaneOutcome::Stepped(r) => Some(Some(*r)),
                LaneOutcome::Faulted(_) => Some(None),
                LaneOutcome::Retired => None,
            })
            .collect();
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                Some(Some(r)) => {
                    let now = f64::from_bits(before[i][0]);
                    assert!(
                        batch.lane(i).time() > now,
                        "round {round}: stepped lane {i} did not advance at step {step}"
                    );
                    if injected_nan[i] {
                        // The masked lane rejoined within its budget, in the
                        // same shared step, after sanitizing the bad input.
                        assert!(
                            r.recovered(),
                            "round {round}: NaN injection on lane {i} at step \
                             {step} did not trigger recovery"
                        );
                        assert!(r.retries <= policy.max_attempts);
                        assert!(r.sanitized_controls >= 1);
                    }
                }
                Some(None) => {
                    assert_eq!(
                        schedule.fatal,
                        Some((i, step)),
                        "round {round}: lane {i} faulted without a fatal injection"
                    );
                    // Exhausted recovery restores the last accepted state.
                    let now = observe(batch.lane(i), handles[i].1, handles[i].2);
                    assert_eq!(now, before[i], "faulted lane moved off its last state");
                    frozen[i] = Some(now);
                    expected_retired += 1;
                }
                None => {
                    let want = frozen[i].expect("Retired implies an earlier fault");
                    let now = observe(batch.lane(i), handles[i].1, handles[i].2);
                    assert_eq!(
                        now, want,
                        "round {round}: retired lane {i} was advanced at step {step}"
                    );
                }
            }
        }
    }

    let stats = batch.stats();
    assert_eq!(stats.shared_steps, STEPS);
    assert_eq!(stats.lane_steps, expected_lane_steps);
    assert_eq!(stats.retired, expected_retired);
    // Every mask exit is accounted for: it either rejoined or retired.
    assert_eq!(
        stats.mask_exits,
        stats.rejoins + stats.retired,
        "round {round}: mask ledger does not balance: {stats:?}"
    );
    // Every recoverable fault actually exercised the mask.
    assert_eq!(
        stats.rejoins, nan_hits,
        "round {round}: NaN injections vs rejoins mismatch: {stats:?}"
    );
}

#[test]
fn random_divergence_schedules_preserve_mask_invariants() {
    for round in 0..ROUNDS {
        fuzz_round(round);
    }
}
