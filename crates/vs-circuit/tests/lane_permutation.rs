//! Property: lane placement is invisible. Shuffling which lane a parameter
//! variant occupies must never change that variant's trajectory **bytes** —
//! any difference means the SoA layout bled state across lanes or the
//! grouping order leaked into the arithmetic.

mod common;

use common::{build_rig, control_value, derive_seed, splitmix, VariantSpec};
use vs_circuit::{BatchedTransient, RecoveryPolicy, Transient};

const STEPS: u64 = 40;
const SHUFFLES: usize = 6;

/// Deterministic Fisher–Yates driven by a SplitMix64 stream.
fn shuffle(perm: &mut [usize], mut state: u64) {
    for i in (1..perm.len()).rev() {
        state = splitmix(state);
        let j = (state % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
}

/// NaN fault schedule attached to the *variant*, not the lane, so the fault
/// follows the variant through every permutation.
fn inject(variant: usize, step: u64) -> Option<f64> {
    match (variant, step) {
        (1, 9) | (4, 21) | (6, 33) => Some(f64::NAN),
        _ => None,
    }
}

/// Runs the variants with `perm[lane] = variant` and returns each
/// *variant's* trajectory (indexed by variant, not lane).
fn run_permuted(specs: &[VariantSpec], perm: &[usize]) -> Vec<Vec<u64>> {
    let policy = RecoveryPolicy::default();
    let mut handles = Vec::new();
    let mut lanes: Vec<Transient> = Vec::new();
    for &v in perm {
        let rig = build_rig(&specs[v]);
        handles.push((rig.controls, rig.top, rig.mid));
        lanes.push(rig.sim);
    }
    let mut batch = BatchedTransient::new(lanes);
    let mut by_variant = vec![Vec::new(); specs.len()];
    for step in 0..STEPS {
        for (lane, &v) in perm.iter().enumerate() {
            if !batch.is_active(lane) {
                continue;
            }
            let (controls, _, _) = &handles[lane];
            for (k, &c) in controls.iter().enumerate() {
                batch.lane_mut(lane).set_control(c, control_value(&specs[v], k, step));
            }
            if let Some(x) = inject(v, step) {
                batch.lane_mut(lane).set_control(controls[0], x);
            }
        }
        batch.step_all(&policy);
        for (lane, &v) in perm.iter().enumerate() {
            let sim = batch.lane(lane);
            let (_, top, mid) = handles[lane];
            let e = sim.energy();
            for x in [
                sim.time(),
                sim.voltage(top),
                sim.voltage(mid),
                e.resistive_loss_j,
                e.source_delivered_j,
                e.load_absorbed_j,
                e.recycler_loss_j,
            ] {
                by_variant[v].push(x.to_bits());
            }
        }
    }
    by_variant
}

#[test]
fn lane_permutation_never_changes_a_variants_trajectory() {
    let seed = derive_seed(0x9E12, "lane-permutation");
    // A deliberately heterogeneous population: shared-factor candidates,
    // per-lane-factor candidates, and two structure outliers — so shuffles
    // move variants in and out of group-leader position, across group
    // boundaries, and between SoA columns.
    let mut specs: Vec<VariantSpec> = Vec::new();
    specs.extend((0..3u64).map(|i| VariantSpec::control_only(seed, i)));
    specs.extend((3..6u64).map(|i| VariantSpec::value_variant(seed, i)));
    specs.extend((6..8u64).map(|i| VariantSpec::topology_variant(seed, i)));

    let identity: Vec<usize> = (0..specs.len()).collect();
    let reference = run_permuted(&specs, &identity);

    let mut perm = identity.clone();
    for round in 0..SHUFFLES {
        shuffle(&mut perm, seed.wrapping_add(round as u64));
        let shuffled = run_permuted(&specs, &perm);
        for v in 0..specs.len() {
            assert_eq!(
                shuffled[v], reference[v],
                "variant {v} changed trajectory when placed at lane \
                 {} (shuffle {round}, perm {perm:?})",
                perm.iter().position(|&p| p == v).unwrap(),
            );
        }
    }
}
