//! Differential harness: [`BatchedTransient`] must produce **bit-identical**
//! trajectories to N independent scalar [`Transient`] runs — at every lane
//! count, for control-variant lanes (shared-factor kernel), value-variant
//! lanes (per-lane-factor kernel), mixed batches with partial groups, and
//! runs where injected control faults force dt-halving / backward-Euler
//! recovery on a strict subset of lanes (mask exit + rejoin).

mod common;

use common::{
    apply_controls, build_rig, control_value, record, VariantSpec,
};
use vs_circuit::{BatchStats, BatchedTransient, LaneOutcome, RecoveryPolicy, Transient};

/// Number of shared timesteps every scenario runs.
const STEPS: u64 = 48;

/// Runs one variant through the scalar path: `step_with_recovery` per step,
/// freeze forever on an unrecoverable error — the exact semantics
/// `BatchedTransient` promises per lane.
fn run_scalar(
    spec: &VariantSpec,
    policy: &RecoveryPolicy,
    inject: impl Fn(u64) -> Option<f64>,
) -> Vec<u64> {
    let mut rig = build_rig(spec);
    let mut active = true;
    let mut traj = Vec::new();
    for step in 0..STEPS {
        if active {
            apply_controls(&mut rig, spec, step);
            if let Some(x) = inject(step) {
                let c0 = rig.controls[0];
                rig.sim.set_control(c0, x);
            }
            if rig.sim.step_with_recovery(policy).is_err() {
                active = false;
            }
        }
        record(&mut traj, &rig);
    }
    traj
}

/// What a batched run produced, per lane in lane order.
struct BatchRun {
    traj: Vec<Vec<u64>>,
    /// `(lane, step, report)` for every step that left the fast path and
    /// recovered.
    recoveries: Vec<(usize, u64, vs_circuit::StepReport)>,
    active: Vec<bool>,
    stats: BatchStats,
}

/// Runs all variants as one lockstep batch, driving the same control
/// schedule and fault injection as the scalar runner.
fn run_batched(
    specs: &[VariantSpec],
    policy: &RecoveryPolicy,
    inject: impl Fn(usize, u64) -> Option<f64>,
) -> BatchRun {
    let mut handles = Vec::new();
    let mut lanes: Vec<Transient> = Vec::new();
    for spec in specs {
        let rig = build_rig(spec);
        handles.push((rig.controls, rig.top, rig.mid));
        lanes.push(rig.sim);
    }
    let mut batch = BatchedTransient::new(lanes);
    let mut traj = vec![Vec::new(); specs.len()];
    let mut recoveries = Vec::new();
    for step in 0..STEPS {
        for (i, spec) in specs.iter().enumerate() {
            if !batch.is_active(i) {
                continue;
            }
            let (controls, _, _) = &handles[i];
            for (k, &c) in controls.iter().enumerate() {
                batch.lane_mut(i).set_control(c, control_value(spec, k, step));
            }
            if let Some(x) = inject(i, step) {
                batch.lane_mut(i).set_control(controls[0], x);
            }
        }
        for (i, outcome) in batch.step_all(policy).iter().enumerate() {
            if let LaneOutcome::Stepped(r) = outcome {
                if r.recovered() {
                    recoveries.push((i, step, *r));
                }
            }
        }
        for (i, (_, top, mid)) in handles.iter().enumerate() {
            record_sim(&mut traj[i], batch.lane(i), *top, *mid);
        }
    }
    let active = (0..specs.len()).map(|i| batch.is_active(i)).collect();
    BatchRun { traj, recoveries, active, stats: batch.stats() }
}

/// `common::record` for a lane borrowed out of the batch.
fn record_sim(traj: &mut Vec<u64>, sim: &Transient, top: vs_circuit::NodeId, mid: vs_circuit::NodeId) {
    let e = sim.energy();
    for v in [
        sim.time(),
        sim.voltage(top),
        sim.voltage(mid),
        e.resistive_loss_j,
        e.source_delivered_j,
        e.load_absorbed_j,
        e.recycler_loss_j,
    ] {
        traj.push(v.to_bits());
    }
}

fn no_inject(_: usize, _: u64) -> Option<f64> {
    None
}

/// Asserts every lane's batched trajectory equals its scalar twin, bit for
/// bit, and reports the first diverging (lane, step) on failure.
fn assert_lanes_match_scalar(
    specs: &[VariantSpec],
    policy: &RecoveryPolicy,
    run: &BatchRun,
    inject: impl Fn(usize, u64) -> Option<f64>,
) {
    for (i, spec) in specs.iter().enumerate() {
        let scalar = run_scalar(spec, policy, |step| inject(i, step));
        assert_eq!(
            run.traj[i].len(),
            scalar.len(),
            "lane {i}: trajectory lengths differ"
        );
        for (k, (&b, &s)) in run.traj[i].iter().zip(&scalar).enumerate() {
            assert_eq!(
                b,
                s,
                "lane {i} diverges from scalar at step {} field {} \
                 (batched {:e} vs scalar {:e})",
                k / 7,
                k % 7,
                f64::from_bits(b),
                f64::from_bits(s),
            );
        }
    }
}

#[test]
fn shared_factor_batches_match_scalar_at_every_lane_count() {
    let policy = RecoveryPolicy::default();
    // 5 exercises a non-power-of-two batch; 1 must degrade to the scalar
    // kernel without changing results.
    for n in [1usize, 2, 4, 5, 8] {
        let specs: Vec<VariantSpec> =
            (0..n as u64).map(|i| VariantSpec::control_only(0xD1FF, i)).collect();
        let run = run_batched(&specs, &policy, no_inject);
        assert_lanes_match_scalar(&specs, &policy, &run, no_inject);
        assert_eq!(run.stats.shared_steps, STEPS);
        assert_eq!(run.stats.lane_steps, STEPS * n as u64);
        assert_eq!(run.stats.mask_exits, 0);
        assert_eq!(run.stats.retired, 0);
        if n == 1 {
            assert_eq!(run.stats.multi_lane_groups, 0);
            assert_eq!(run.stats.singleton_solves, STEPS);
        } else {
            // Identical netlists: every shared step is one shared-factor
            // group covering all lanes.
            assert_eq!(run.stats.multi_lane_groups, STEPS);
            assert_eq!(run.stats.shared_factor_groups, STEPS);
            assert_eq!(run.stats.multi_lane_solves, STEPS * n as u64);
            assert_eq!(run.stats.singleton_solves, 0);
        }
    }
}

#[test]
fn value_variant_batches_use_per_lane_factors_and_match_scalar() {
    let policy = RecoveryPolicy::default();
    let specs: Vec<VariantSpec> =
        (0..4u64).map(|i| VariantSpec::value_variant(0x5EED, i)).collect();
    let run = run_batched(&specs, &policy, no_inject);
    assert_lanes_match_scalar(&specs, &policy, &run, no_inject);
    // Same topology ⇒ shared symbolic structure ⇒ one multi-lane group per
    // step; different element values ⇒ never the shared-factor kernel.
    assert_eq!(run.stats.multi_lane_groups, STEPS);
    assert_eq!(run.stats.multi_lane_solves, STEPS * 4);
    assert_eq!(run.stats.shared_factor_groups, 0);
    assert_eq!(run.stats.singleton_solves, 0);
    assert_eq!(run.stats.mask_exits, 0);
}

#[test]
fn mixed_batch_forms_partial_groups_and_matches_scalar() {
    let policy = RecoveryPolicy::default();
    // 3 control-only + 2 value variants share one structure (a 5-lane
    // group — a partial group over the 6 lanes); the topology variant can
    // never group and must fall back to a singleton solve inside the
    // lockstep schedule.
    let mut specs: Vec<VariantSpec> =
        (0..3u64).map(|i| VariantSpec::control_only(0x71FE, i)).collect();
    specs.extend((3..5u64).map(|i| VariantSpec::value_variant(0x71FE, i)));
    specs.push(VariantSpec::topology_variant(0x71FE, 5));
    let run = run_batched(&specs, &policy, no_inject);
    assert_lanes_match_scalar(&specs, &policy, &run, no_inject);
    assert_eq!(run.stats.multi_lane_groups, STEPS);
    assert_eq!(run.stats.multi_lane_solves, STEPS * 5);
    // The 5-lane group mixes fingerprints, so it uses per-lane factors.
    assert_eq!(run.stats.shared_factor_groups, 0);
    assert_eq!(run.stats.singleton_solves, STEPS);
}

#[test]
fn masked_lanes_recover_via_dt_halving_bit_identically() {
    let policy = RecoveryPolicy::default();
    let specs: Vec<VariantSpec> =
        (0..4u64).map(|i| VariantSpec::control_only(0xFA11, i)).collect();
    // NaN control injections on a strict subset of lanes: lane 1 twice,
    // lane 2 once. Each forces a health-gate failure, a mask exit, and a
    // sanitize + dt-halving recovery.
    let inject = |lane: usize, step: u64| match (lane, step) {
        (1, 10) | (1, 23) | (2, 17) => Some(f64::NAN),
        _ => None,
    };
    let run = run_batched(&specs, &policy, inject);
    assert_lanes_match_scalar(&specs, &policy, &run, inject);
    assert_eq!(run.stats.mask_exits, 3);
    assert_eq!(run.stats.rejoins, 3);
    assert_eq!(run.stats.retired, 0);
    assert!(run.active.iter().all(|&a| a));
    // The recoveries happened exactly where injected, and each sanitized
    // the bad control and halved the timestep.
    let where_recovered: Vec<(usize, u64)> =
        run.recoveries.iter().map(|&(l, s, _)| (l, s)).collect();
    assert_eq!(where_recovered, vec![(1, 10), (2, 17), (1, 23)]);
    for &(_, _, r) in &run.recoveries {
        assert!(r.retries >= 1);
        assert!(r.halvings >= 1, "recovery must have halved dt");
        assert!(r.sanitized_controls >= 1);
        assert!(!r.used_backward_euler);
    }
}

#[test]
fn masked_lanes_recover_via_backward_euler_bit_identically() {
    // Falling back to backward Euler on the very first retry exercises the
    // method-switch path through the mask.
    let policy = RecoveryPolicy { backward_euler_after: 1, ..RecoveryPolicy::default() };
    let specs: Vec<VariantSpec> =
        (0..3u64).map(|i| VariantSpec::value_variant(0xBEBE, i)).collect();
    let inject = |lane: usize, step: u64| {
        if lane == 0 && step == 12 { Some(f64::NAN) } else { None }
    };
    let run = run_batched(&specs, &policy, inject);
    assert_lanes_match_scalar(&specs, &policy, &run, inject);
    assert_eq!(run.stats.mask_exits, 1);
    assert_eq!(run.stats.rejoins, 1);
    assert_eq!(run.recoveries.len(), 1);
    let (lane, step, r) = run.recoveries[0];
    assert_eq!((lane, step), (0, 12));
    assert!(r.used_backward_euler, "policy forces BE on the first retry");
}

#[test]
fn unrecoverable_lane_is_retired_and_frozen_bit_identically() {
    let policy = RecoveryPolicy::default();
    let specs: Vec<VariantSpec> =
        (0..4u64).map(|i| VariantSpec::control_only(0xDEAD, i)).collect();
    // A finite but absurd load current diverges under every retry: the lane
    // must exhaust its budget, retire at its last accepted state, and stay
    // frozen while the other lanes keep advancing.
    let inject = |lane: usize, step: u64| {
        if lane == 3 && step == 15 { Some(1e9) } else { None }
    };
    let run = run_batched(&specs, &policy, inject);
    assert_lanes_match_scalar(&specs, &policy, &run, inject);
    assert_eq!(run.stats.mask_exits, 1);
    assert_eq!(run.stats.rejoins, 0);
    assert_eq!(run.stats.retired, 1);
    assert_eq!(run.active, vec![true, true, true, false]);
    // After step 15 the retired lane's observables never change a bit.
    let frozen = &run.traj[3][15 * 7..16 * 7];
    for step in 16..STEPS as usize {
        assert_eq!(&run.traj[3][step * 7..(step + 1) * 7], frozen);
    }
}
