//! Randomized-but-deterministic tests for the circuit solver: invariants
//! that must hold for any passive network, not just hand-picked examples.
//!
//! Each test sweeps a fixed set of seeds through a [`vs_num::Rng`] stream,
//! so failures reproduce exactly without an external property-test harness
//! (the build environment is fully offline).

use vs_num::Rng;

use vs_circuit::{AcAnalysis, Integration, Netlist, NodeId, RecoveryPolicy, Transient, Waveform};

/// Builds a random ladder network: a supply at the top, `n` rungs of series
/// resistance to ground-terminated RC sections, optional load currents.
fn ladder(
    rungs: usize,
    series_ohms: &[f64],
    shunt_ohms: &[f64],
    shunt_farads: &[f64],
    loads: &[f64],
    volts: f64,
) -> (Netlist, Vec<NodeId>) {
    let mut net = Netlist::new();
    let top = net.node("top");
    net.voltage_source(top, Netlist::GROUND, volts);
    let mut prev = top;
    let mut nodes = Vec::new();
    for i in 0..rungs {
        let n = net.node(format!("n{i}"));
        net.resistor(prev, n, series_ohms[i]);
        net.resistor(n, Netlist::GROUND, shunt_ohms[i]);
        net.capacitor(n, Netlist::GROUND, shunt_farads[i]);
        net.current_source(n, Netlist::GROUND, Waveform::Dc(loads[i]));
        nodes.push(n);
        prev = n;
    }
    (net, nodes)
}

/// Runs `f` once per deterministic case, handing it a seeded RNG.
fn for_each_case(cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::seed_from_u64(0x51ab_e77e ^ case.wrapping_mul(0x9e3779b97f4a7c15));
        f(&mut rng);
    }
}

/// Without load currents, every node of a resistive-capacitive divider
/// network sits between 0 and the supply voltage at DC.
#[test]
fn dc_voltages_bounded_by_supply() {
    for_each_case(64, |rng| {
        let rungs = rng.index(1, 6);
        let volts = rng.range_f64(0.5, 5.0);
        let series: Vec<f64> = (0..rungs).map(|_| rng.range_f64(0.1, 10.1)).collect();
        let shunt: Vec<f64> = (0..rungs).map(|_| rng.range_f64(1.0, 101.0)).collect();
        let caps: Vec<f64> = (0..rungs).map(|_| rng.range_f64(1e-12, 1e-9)).collect();
        let loads = vec![0.0; rungs];
        let (net, nodes) = ladder(rungs, &series, &shunt, &caps, &loads, volts);
        let dc = net.dc_operating_point().unwrap();
        for n in nodes {
            let v = dc.voltage(n);
            assert!(v >= -1e-9 && v <= volts + 1e-9, "v = {v}");
        }
    });
}

/// Tellegen's theorem (sum of branch powers = 0) holds at every accepted
/// transient step of any ladder, for both integration methods.
#[test]
fn tellegen_holds_along_transient() {
    for_each_case(64, |rng| {
        let rungs = rng.index(1, 6);
        let be = rng.chance(0.5);
        let series: Vec<f64> = (0..rungs).map(|_| rng.range_f64(0.1, 10.1)).collect();
        let shunt: Vec<f64> = (0..rungs).map(|_| rng.range_f64(1.0, 101.0)).collect();
        let caps: Vec<f64> = (0..rungs).map(|_| rng.range_f64(1e-12, 1e-9)).collect();
        let loads: Vec<f64> = (0..rungs).map(|_| rng.range_f64(0.0, 0.2)).collect();
        let (net, _) = ladder(rungs, &series, &shunt, &caps, &loads, 1.0);
        let method = if be {
            Integration::BackwardEuler
        } else {
            Integration::Trapezoidal
        };
        let mut sim = Transient::new(&net, 1e-10, method).unwrap();
        for _ in 0..50 {
            sim.step().unwrap();
            assert!(
                sim.tellegen_residual_w().abs() < 1e-8,
                "residual {}",
                sim.tellegen_residual_w()
            );
        }
    });
}

/// Energy conservation: source energy equals resistive loss plus load
/// energy plus the change in stored capacitor energy (within integration
/// tolerance).
#[test]
fn energy_balance_on_ladders() {
    for_each_case(64, |rng| {
        let rungs = rng.index(1, 6);
        let series: Vec<f64> = (0..rungs).map(|_| rng.range_f64(0.5, 5.5)).collect();
        let shunt: Vec<f64> = (0..rungs).map(|_| rng.range_f64(5.0, 55.0)).collect();
        let caps: Vec<f64> = (0..rungs).map(|_| rng.range_f64(1e-12, 1.01e-10)).collect();
        let loads: Vec<f64> = (0..rungs).map(|_| rng.range_f64(0.0, 0.1)).collect();
        let (net, _) = ladder(rungs, &series, &shunt, &caps, &loads, 2.0);
        // Start from DC equilibrium: stored energy change is ~zero, so
        // source = loss + load.
        let mut sim = Transient::new(&net, 1e-10, Integration::Trapezoidal).unwrap();
        sim.run(100).unwrap();
        let e = sim.energy();
        let residual = e.source_delivered_j - e.resistive_loss_j - e.load_absorbed_j;
        let scale = e.source_delivered_j.abs().max(1e-15);
        assert!(
            residual.abs() / scale < 1e-6,
            "residual {residual}, scale {scale}"
        );
        assert!(e.resistive_loss_j >= 0.0);
    });
}

/// A run that hits non-finite control inputs mid-flight and recovers
/// converges to the same steady state as a clean run of the same netlist:
/// adaptive recovery perturbs the trajectory, not the physics.
#[test]
fn recovery_converges_to_clean_steady_state() {
    for_each_case(32, |rng| {
        let rungs = rng.index(1, 5);
        // Short time constants so a few hundred steps reach steady state.
        let series: Vec<f64> = (0..rungs).map(|_| rng.range_f64(0.5, 3.0)).collect();
        let shunt: Vec<f64> = (0..rungs).map(|_| rng.range_f64(2.0, 12.0)).collect();
        let caps: Vec<f64> = (0..rungs).map(|_| rng.range_f64(1e-12, 2e-11)).collect();
        let loads = vec![0.0; rungs];
        let (mut net, nodes) = ladder(rungs, &series, &shunt, &caps, &loads, 1.5);
        let (_, ctl) = net.controlled_current_source(*nodes.last().unwrap(), Netlist::GROUND);
        let amps = rng.range_f64(0.0, 0.1);
        let policy = RecoveryPolicy::default();

        let mut clean = Transient::new(&net, 1e-10, Integration::Trapezoidal).unwrap();
        clean.set_control(ctl, amps);
        clean.run(600).unwrap();

        let mut faulted = Transient::new(&net, 1e-10, Integration::Trapezoidal).unwrap();
        faulted.set_control(ctl, amps);
        faulted.run(100).unwrap();
        // A burst of NaN telemetry: each step must be recovered (the
        // sanitizer zeroes the control), then the healthy load returns.
        let mut retries = 0;
        for _ in 0..5 {
            faulted.set_control(ctl, f64::NAN);
            let report = faulted.step_with_recovery(&policy).unwrap();
            retries += report.retries;
        }
        assert!(retries > 0, "the NaN burst must exercise recovery");
        faulted.set_control(ctl, amps);
        for _ in 0..495 {
            faulted.step_with_recovery(&policy).unwrap();
        }

        for n in &nodes {
            let a = clean.voltage(*n);
            let b = faulted.voltage(*n);
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1e-3),
                "node diverged after recovery: clean {a}, faulted {b}"
            );
        }
    });
}

/// Driving-point impedance magnitude of an RC (no inductor) one-port is
/// non-increasing in frequency.
#[test]
fn rc_impedance_monotone_in_frequency() {
    for_each_case(64, |rng| {
        let rungs = rng.index(1, 6);
        // Pure RC ladder one-port (no source).
        let mut net = Netlist::new();
        let port = net.node("port");
        let mut prev = port;
        for i in 0..rungs {
            let n = net.node(format!("n{i}"));
            net.resistor(prev, n, rng.range_f64(0.5, 5.5));
            net.capacitor(n, Netlist::GROUND, rng.range_f64(1e-12, 1e-9));
            net.resistor(n, Netlist::GROUND, rng.range_f64(10.0, 110.0));
            prev = n;
        }
        let ac = AcAnalysis::new(&net).unwrap();
        let freqs = vs_circuit::log_space(1e3, 1e9, 25);
        let mut prev_mag = f64::INFINITY;
        for f in freqs {
            let z = ac.impedance(f, port, Netlist::GROUND).unwrap().abs();
            assert!(
                z <= prev_mag * (1.0 + 1e-9),
                "|Z| rose: {z} > {prev_mag} at {f} Hz"
            );
            prev_mag = z;
        }
    });
}
