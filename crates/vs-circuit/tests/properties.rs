//! Property-based tests for the circuit solver: invariants that must hold
//! for any passive network, not just hand-picked examples.

use proptest::prelude::*;
use vs_circuit::{AcAnalysis, Integration, Netlist, NodeId, Transient, Waveform};

/// Builds a random ladder network: a supply at the top, `n` rungs of series
/// resistance to ground-terminated RC sections, optional load currents.
fn ladder(
    rungs: usize,
    series_ohms: &[f64],
    shunt_ohms: &[f64],
    shunt_farads: &[f64],
    loads: &[f64],
    volts: f64,
) -> (Netlist, Vec<NodeId>) {
    let mut net = Netlist::new();
    let top = net.node("top");
    net.voltage_source(top, Netlist::GROUND, volts);
    let mut prev = top;
    let mut nodes = Vec::new();
    for i in 0..rungs {
        let n = net.node(format!("n{i}"));
        net.resistor(prev, n, series_ohms[i]);
        net.resistor(n, Netlist::GROUND, shunt_ohms[i]);
        net.capacitor(n, Netlist::GROUND, shunt_farads[i]);
        net.current_source(n, Netlist::GROUND, Waveform::Dc(loads[i]));
        nodes.push(n);
        prev = n;
    }
    (net, nodes)
}

fn rung_count() -> impl Strategy<Value = usize> {
    1usize..6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without load currents, every node of a resistive-capacitive divider
    /// network sits between 0 and the supply voltage at DC.
    #[test]
    fn dc_voltages_bounded_by_supply(
        rungs in rung_count(),
        seed in any::<u64>(),
        volts in 0.5f64..5.0,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let series: Vec<f64> = (0..rungs).map(|_| 0.1 + next() * 10.0).collect();
        let shunt: Vec<f64> = (0..rungs).map(|_| 1.0 + next() * 100.0).collect();
        let caps: Vec<f64> = (0..rungs).map(|_| 1e-12 + next() * 1e-9).collect();
        let loads = vec![0.0; rungs];
        let (net, nodes) = ladder(rungs, &series, &shunt, &caps, &loads, volts);
        let dc = net.dc_operating_point().unwrap();
        for n in nodes {
            let v = dc.voltage(n);
            prop_assert!(v >= -1e-9 && v <= volts + 1e-9, "v = {v}");
        }
    }

    /// Tellegen's theorem (sum of branch powers = 0) holds at every accepted
    /// transient step of any ladder, for both integration methods.
    #[test]
    fn tellegen_holds_along_transient(
        rungs in rung_count(),
        seed in any::<u64>(),
        be in any::<bool>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let series: Vec<f64> = (0..rungs).map(|_| 0.1 + next() * 10.0).collect();
        let shunt: Vec<f64> = (0..rungs).map(|_| 1.0 + next() * 100.0).collect();
        let caps: Vec<f64> = (0..rungs).map(|_| 1e-12 + next() * 1e-9).collect();
        let loads: Vec<f64> = (0..rungs).map(|_| next() * 0.2).collect();
        let (net, _) = ladder(rungs, &series, &shunt, &caps, &loads, 1.0);
        let method = if be { Integration::BackwardEuler } else { Integration::Trapezoidal };
        let mut sim = Transient::new(&net, 1e-10, method).unwrap();
        for _ in 0..50 {
            sim.step().unwrap();
            prop_assert!(sim.tellegen_residual_w().abs() < 1e-8,
                "residual {}", sim.tellegen_residual_w());
        }
    }

    /// Energy conservation: source energy equals resistive loss plus load
    /// energy plus the change in stored capacitor energy (within integration
    /// tolerance).
    #[test]
    fn energy_balance_on_ladders(
        rungs in rung_count(),
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let series: Vec<f64> = (0..rungs).map(|_| 0.5 + next() * 5.0).collect();
        let shunt: Vec<f64> = (0..rungs).map(|_| 5.0 + next() * 50.0).collect();
        let caps: Vec<f64> = (0..rungs).map(|_| 1e-12 + next() * 1e-10).collect();
        let loads: Vec<f64> = (0..rungs).map(|_| next() * 0.1).collect();
        let (net, _) = ladder(rungs, &series, &shunt, &caps, &loads, 2.0);
        // Start from DC equilibrium: stored energy change is ~zero, so
        // source = loss + load.
        let mut sim = Transient::new(&net, 1e-10, Integration::Trapezoidal).unwrap();
        sim.run(100).unwrap();
        let e = sim.energy();
        let residual = e.source_delivered_j - e.resistive_loss_j - e.load_absorbed_j;
        let scale = e.source_delivered_j.abs().max(1e-15);
        prop_assert!(residual.abs() / scale < 1e-6, "residual {residual}, scale {scale}");
        prop_assert!(e.resistive_loss_j >= 0.0);
    }

    /// Driving-point impedance magnitude of an RC (no inductor) one-port is
    /// non-increasing in frequency.
    #[test]
    fn rc_impedance_monotone_in_frequency(
        rungs in rung_count(),
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        // Pure RC ladder one-port (no source).
        let mut net = Netlist::new();
        let port = net.node("port");
        let mut prev = port;
        for i in 0..rungs {
            let n = net.node(format!("n{i}"));
            net.resistor(prev, n, 0.5 + next() * 5.0);
            net.capacitor(n, Netlist::GROUND, 1e-12 + next() * 1e-9);
            net.resistor(n, Netlist::GROUND, 10.0 + next() * 100.0);
            prev = n;
        }
        let ac = AcAnalysis::new(&net).unwrap();
        let freqs = vs_circuit::log_space(1e3, 1e9, 25);
        let mut prev_mag = f64::INFINITY;
        for f in freqs {
            let z = ac.impedance(f, port, Netlist::GROUND).unwrap().abs();
            prop_assert!(z <= prev_mag * (1.0 + 1e-9), "|Z| rose: {z} > {prev_mag} at {f} Hz");
            prev_mag = z;
        }
    }
}
