//! Randomized-but-deterministic tests for the power-delivery-subsystem
//! models. Each case is driven by a seeded [`vs_num::Rng`], so failures
//! reproduce exactly without an external property-test harness.

use vs_circuit::{Integration, Transient};
use vs_num::Rng;
use vs_pds::{
    impedance_profile, ivr_efficiency, vrm_efficiency, AreaModel, CrIvrConfig, PdnParams,
    SingleLayerPdn, StackedPdn,
};

fn stacked(params: &PdnParams, area_mult: f64) -> StackedPdn {
    let am = AreaModel::default();
    let cfg = CrIvrConfig::sized_by_gpu_area(area_mult, &am);
    StackedPdn::build(params, Some((&cfg, &am)))
}

/// Runs `f` once per deterministic case, handing it a seeded RNG.
fn for_each_case(cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::seed_from_u64(0x9d5_ca5e ^ case.wrapping_mul(0x9e3779b97f4a7c15));
        f(&mut rng);
    }
}

/// Under any uniform load, the stacked PDN divides the supply evenly:
/// every SM sits within a few percent of VDD / n_layers.
#[test]
fn uniform_load_balances_any_stack() {
    for_each_case(12, |rng| {
        let amps = rng.range_f64(0.5, 14.0);
        let area_mult = rng.range_f64(0.1, 2.0);
        let n_layers = rng.index(2, 6);
        let params = PdnParams {
            n_layers,
            vdd_stack: 1.025 * n_layers as f64,
            ..PdnParams::default()
        };
        let pdn = stacked(&params, area_mult);
        let (v0, g2) = pdn.balanced_initial_state();
        let mut sim = Transient::with_initial_state(
            &pdn.netlist,
            1.0 / 700e6,
            Integration::Trapezoidal,
            &v0,
            &g2,
        )
        .unwrap();
        for layer in 0..n_layers {
            for col in 0..params.n_columns {
                sim.set_control(pdn.sm_load[layer][col], amps);
            }
        }
        for _ in 0..20_000 {
            sim.step().unwrap();
        }
        let nominal = params.vdd_stack / n_layers as f64;
        for layer in 0..n_layers {
            for col in 0..params.n_columns {
                let v = pdn.sm_voltage(&sim, layer, col);
                assert!(
                    (v - nominal).abs() < 0.06 * nominal,
                    "SM({layer},{col}) at {v} V, nominal {nominal}"
                );
            }
        }
    });
}

/// Impedance magnitudes are finite, non-negative, and the residual
/// component dominates the global one at the lowest frequency for any
/// (reasonable) CR-IVR size — including none at all.
#[test]
fn impedance_profile_is_well_behaved() {
    for_each_case(24, |rng| {
        let area_mult = if rng.chance(0.2) {
            None
        } else {
            Some(rng.range_f64(0.05, 2.0))
        };
        let params = PdnParams::default();
        let pdn = match area_mult {
            Some(m) => stacked(&params, m),
            None => StackedPdn::build(&params, None),
        };
        let p = impedance_profile(&pdn, 1e4, 500e6, 12).unwrap();
        for i in 0..p.freqs.len() {
            for z in [
                p.z_global[i],
                p.z_stack[i],
                p.z_residual_same_layer[i],
                p.z_residual_diff_layer[i],
            ] {
                assert!(z.is_finite() && z >= 0.0, "bad impedance {z}");
            }
        }
        assert!(p.z_residual_same_layer[0] >= p.z_global[0]);
    });
}

/// More CR-IVR area never raises the low-frequency residual impedance.
#[test]
fn residual_impedance_is_monotone_in_area() {
    for_each_case(24, |rng| {
        let small = rng.range_f64(0.05, 0.5);
        let factor = rng.range_f64(1.5, 4.0);
        let params = PdnParams::default();
        let lo = stacked(&params, small);
        let hi = stacked(&params, small * factor);
        let p_lo = impedance_profile(&lo, 1e4, 1e6, 4).unwrap();
        let p_hi = impedance_profile(&hi, 1e4, 1e6, 4).unwrap();
        assert!(p_hi.z_residual_same_layer[0] <= p_lo.z_residual_same_layer[0] * 1.001);
    });
}

/// Efficiency curves stay within physical bounds everywhere.
#[test]
fn efficiency_curves_bounded() {
    for_each_case(64, |rng| {
        let load = rng.range_f64(-1.0, 5.0);
        let v = vrm_efficiency(load);
        let i = ivr_efficiency(load);
        assert!((0.5..1.0).contains(&v));
        assert!((0.5..1.0).contains(&i));
    });
}

/// Single-layer delivery voltage scales the IR-loss fraction roughly
/// with 1/V^2 for the same wattage.
#[test]
fn delivery_voltage_cuts_single_layer_loss() {
    for_each_case(6, |rng| {
        let v_hi = rng.range_f64(1.4, 2.5);
        let params = PdnParams::default();
        let loss_frac = |v: f64| {
            let pdn = SingleLayerPdn::build(&params, v);
            let mut sim =
                Transient::new(&pdn.netlist, 1.0 / 700e6, Integration::Trapezoidal).unwrap();
            // 8 W per SM regardless of rail: current scales as 1/v.
            for c in &pdn.sm_load {
                sim.set_control(*c, 8.0 / v);
            }
            for _ in 0..10_000 {
                sim.step().unwrap();
            }
            let loss: f64 = pdn
                .pdn_resistors
                .iter()
                .map(|id| sim.element_absorbed_j(*id))
                .sum();
            loss / sim.energy().source_delivered_j
        };
        let f1 = loss_frac(1.0);
        let fh = loss_frac(v_hi);
        assert!(fh < f1, "loss must fall with delivery voltage: {f1} -> {fh}");
    });
}
