//! The 4x4 voltage-stacked PDN netlist (paper Fig. 1(c)).
//!
//! A single 4.1 V board source feeds the die top through board and package
//! parasitics; SMs are stacked four layers deep in four columns, each SM a
//! controlled current source across its layer span with local decoupling
//! capacitance. Lateral grid resistors tie columns together at each internal
//! stack level. Optional CR-IVR stages (averaged charge recyclers) and DCC
//! ballast current DACs complete the cross-layer hardware.

use vs_circuit::{ControlId, ElementId, Netlist, NodeId, Transient};

use crate::area::AreaModel;
use crate::crivr::CrIvrConfig;
use crate::params::PdnParams;

/// A built voltage-stacked PDN with handles for co-simulation.
#[derive(Debug, Clone)]
pub struct StackedPdn {
    /// The netlist (feed to [`vs_circuit::Transient`] or
    /// [`vs_circuit::AcAnalysis`]).
    pub netlist: Netlist,
    /// Topology parameters it was built with.
    pub params: PdnParams,
    /// SM load controls, `[layer][column]` (amperes, set each cycle).
    pub sm_load: Vec<Vec<ControlId>>,
    /// SM load elements, `[layer][column]` (for energy accounting).
    pub sm_load_elems: Vec<Vec<ElementId>>,
    /// DCC ballast controls, `[layer][column]`.
    pub dcc: Vec<Vec<ControlId>>,
    /// DCC ballast elements, `[layer][column]`.
    pub dcc_elems: Vec<Vec<ElementId>>,
    /// Top node of each SM's span, `[layer][column]`.
    pub sm_top: Vec<Vec<NodeId>>,
    /// Bottom node of each SM's span, `[layer][column]`.
    pub sm_bottom: Vec<Vec<NodeId>>,
    /// The die-top supply node.
    pub die_top: NodeId,
    /// The die ground node (above the return-path parasitics).
    pub die_gnd: NodeId,
    /// The board source element (for delivered-energy accounting).
    pub source: ElementId,
    /// Elements whose dissipation counts as PDN loss (parasitics).
    pub pdn_resistors: Vec<ElementId>,
    /// CR-IVR recycler elements (their dissipation is conversion loss).
    pub recyclers: Vec<ElementId>,
}

impl StackedPdn {
    /// Builds the stacked PDN. Pass `None` to omit the CR-IVR entirely
    /// (used by the Fig. 3(a) impedance analysis).
    pub fn build(params: &PdnParams, crivr: Option<(&CrIvrConfig, &AreaModel)>) -> Self {
        params.validate();
        let mut net = Netlist::new();
        let nl = params.n_layers;
        let nc = params.n_columns;

        // Supply path: board -> package -> die top.
        let pcb = net.node("pcb");
        let die_top = net.node("die_top");
        let die_gnd = net.node("die_gnd");
        let src_pos = net.node("src");
        let source = net.voltage_source(src_pos, Netlist::GROUND, params.vdd_stack);
        let mut pdn_resistors = Vec::new();
        // Series supply path: src -R_board-> pcb -R_pkg-> pkg_mid -L-> die_top.
        pdn_resistors.push(net.resistor(src_pos, pcb, params.r_board));
        let mid = net.node("pkg_mid");
        pdn_resistors.push(net.resistor(pcb, mid, params.r_pkg));
        net.inductor(mid, die_top, params.l_board + params.l_pkg);
        net.capacitor(pcb, Netlist::GROUND, params.c_board);
        // Series ground return: die_gnd -R_gnd-> gnd_mid -L_gnd-> GROUND.
        let gnd_mid = net.node("gnd_mid");
        pdn_resistors.push(net.resistor(die_gnd, gnd_mid, params.r_gnd));
        net.inductor(gnd_mid, Netlist::GROUND, params.l_gnd);

        // Internal stack level nodes, per column: levels 1..nl-1.
        // level 0 = die_gnd, level nl = die_top.
        let mut level_nodes: Vec<Vec<NodeId>> = Vec::new(); // [level-1][col]
        for level in 1..nl {
            let mut row = Vec::new();
            for col in 0..nc {
                row.push(net.node(format!("l{level}c{col}")));
            }
            level_nodes.push(row);
        }
        let node_at = |level: usize, col: usize| -> NodeId {
            if level == 0 {
                die_gnd
            } else if level == nl {
                die_top
            } else {
                level_nodes[level - 1][col]
            }
        };

        // Lateral grid resistors between adjacent columns at internal
        // levels, plus the node-to-substrate parasitic capacitance that
        // makes the stack component of load current visible (Fig. 3).
        for level in 1..nl {
            for col in 0..nc - 1 {
                net.resistor(node_at(level, col), node_at(level, col + 1), params.r_lateral);
            }
            for col in 0..nc {
                net.capacitor(node_at(level, col), die_gnd, params.c_node_gnd);
            }
        }

        // SM loads, decap, and DCC per (layer, column). Layer `l` spans
        // level l+1 (top) to level l (bottom), l = 0..nl-1.
        let mut sm_load = Vec::new();
        let mut sm_load_elems = Vec::new();
        let mut dcc = Vec::new();
        let mut dcc_elems = Vec::new();
        let mut sm_top = Vec::new();
        let mut sm_bottom = Vec::new();
        for layer in 0..nl {
            let mut loads = Vec::new();
            let mut load_elems = Vec::new();
            let mut dccs = Vec::new();
            let mut dcc_es = Vec::new();
            let mut tops = Vec::new();
            let mut bottoms = Vec::new();
            for col in 0..nc {
                let level_top = node_at(layer + 1, col);
                let level_bottom = node_at(layer, col);
                net.capacitor(level_top, level_bottom, params.c_layer);
                // SM terminals sit behind the local power grid.
                let top = net.node(format!("sm{layer}_{col}t"));
                let bottom = net.node(format!("sm{layer}_{col}b"));
                pdn_resistors.push(net.resistor(level_top, top, params.r_sm_grid));
                pdn_resistors.push(net.resistor(bottom, level_bottom, params.r_sm_grid));
                let (load_elem, load) = net.controlled_current_source(top, bottom);
                // DCC ballast DACs live next to the CR-IVR at the level
                // nodes, not behind the SM grid.
                let (dcc_elem, ballast) = net.controlled_current_source(level_top, level_bottom);
                loads.push(load);
                load_elems.push(load_elem);
                dccs.push(ballast);
                dcc_es.push(dcc_elem);
                tops.push(top);
                bottoms.push(bottom);
            }
            sm_load.push(loads);
            sm_load_elems.push(load_elems);
            dcc.push(dccs);
            dcc_elems.push(dcc_es);
            sm_top.push(tops);
            sm_bottom.push(bottoms);
        }

        // CR-IVR ladders. `n_sub_ivrs` selects the physical distribution
        // (Fig. 2): with 4 sub-IVRs every column gets a ladder next to its
        // SMs; a lumped design concentrates the same total conductance on
        // fewer columns and relies on the lateral grid to spread it.
        let mut recyclers = Vec::new();
        if let Some((cfg, area_model)) = crivr {
            let covered = cfg.n_sub_ivrs.clamp(1, nc);
            let g_stage = cfg.total_conductance(area_model) / covered as f64;
            if g_stage > 0.0 {
                for col in 0..covered {
                    for l in 1..nl {
                        recyclers.push(net.charge_recycler(
                            node_at(l + 1, col),
                            node_at(l, col),
                            node_at(l - 1, col),
                            g_stage,
                        ));
                    }
                }
            }
        }

        StackedPdn {
            netlist: net,
            params: *params,
            sm_load,
            sm_load_elems,
            dcc,
            dcc_elems,
            sm_top,
            sm_bottom,
            die_top,
            die_gnd,
            source,
            pdn_resistors,
            recyclers,
        }
    }

    /// Number of columns that carry a CR-IVR ladder (`n_sub_ivrs` clamped to
    /// the column count; 0 when the PDN was built without a CR-IVR).
    pub fn n_recycler_columns(&self) -> usize {
        let stages = self.params.n_layers - 1;
        self.recyclers.len().checked_div(stages).unwrap_or(0)
    }

    /// The recycler elements of one column's CR-IVR ladder, bottom stage
    /// first. Empty when the column has no ladder (lumped designs cover only
    /// the first `n_recycler_columns` columns).
    ///
    /// `build` pushes `n_layers - 1` stages per covered column, column-major,
    /// which is the layout this slices.
    pub fn column_recyclers(&self, column: usize) -> &[ElementId] {
        let stages = self.params.n_layers - 1;
        let start = column * stages;
        if stages == 0 || start >= self.recyclers.len() {
            &[]
        } else {
            &self.recyclers[start..start + stages]
        }
    }

    /// Voltage across SM `(layer, column)` in a running transient.
    pub fn sm_voltage(&self, sim: &Transient, layer: usize, col: usize) -> f64 {
        sim.voltage(self.sm_top[layer][col]) - sim.voltage(self.sm_bottom[layer][col])
    }

    /// All SM voltages, layer-major.
    pub fn all_sm_voltages(&self, sim: &Transient) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.params.n_sms());
        for layer in 0..self.params.n_layers {
            for col in 0..self.params.n_columns {
                v.push(self.sm_voltage(sim, layer, col));
            }
        }
        v
    }

    /// Balanced initial node voltages (layer voltages evenly divided) for
    /// starting a transient at the stacked equilibrium.
    pub fn balanced_initial_state(&self) -> (Vec<f64>, Vec<f64>) {
        let nl = self.params.n_layers;
        let v_layer = self.params.vdd_stack / nl as f64;
        let mut voltages = vec![0.0; self.netlist.n_nodes()];
        // Node order must match build(): pcb, die_top, die_gnd, src, pkg_mid,
        // gnd_mid, then level nodes.
        voltages[1] = self.params.vdd_stack; // pcb
        voltages[2] = self.params.vdd_stack; // die_top
        voltages[3] = 0.0; // die_gnd
        voltages[4] = self.params.vdd_stack; // src
        voltages[5] = self.params.vdd_stack; // pkg_mid
        voltages[6] = 0.0; // gnd_mid
        let mut idx = 7;
        for level in 1..nl {
            for _col in 0..self.params.n_columns {
                voltages[idx] = v_layer * level as f64;
                idx += 1;
            }
        }
        // SM terminal nodes, created layer-major after the level nodes.
        for layer in 0..nl {
            for _col in 0..self.params.n_columns {
                voltages[idx] = v_layer * (layer + 1) as f64; // top terminal
                voltages[idx + 1] = v_layer * layer as f64; // bottom terminal
                idx += 2;
            }
        }
        let n_g2 = self.netlist_group2_len();
        (voltages, vec![0.0; n_g2])
    }

    fn netlist_group2_len(&self) -> usize {
        self.netlist
            .elements()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    vs_circuit::Element::VoltageSource { .. } | vs_circuit::Element::Inductor { .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_circuit::Integration;

    fn build_default(crivr_mult: Option<f64>) -> StackedPdn {
        let params = PdnParams::default();
        let am = AreaModel::default();
        match crivr_mult {
            Some(m) => {
                let cfg = CrIvrConfig::sized_by_gpu_area(m, &am);
                StackedPdn::build(&params, Some((&cfg, &am)))
            }
            None => StackedPdn::build(&params, None),
        }
    }

    fn run_balanced(pdn: &StackedPdn, amps_per_sm: f64, steps: usize) -> Transient {
        let (v0, g2) = pdn.balanced_initial_state();
        let mut sim = Transient::with_initial_state(
            &pdn.netlist,
            1.0 / 700e6,
            Integration::Trapezoidal,
            &v0,
            &g2,
        )
        .unwrap();
        for layer in 0..4 {
            for col in 0..4 {
                sim.set_control(pdn.sm_load[layer][col], amps_per_sm);
            }
        }
        for _ in 0..steps {
            sim.step().unwrap();
        }
        sim
    }

    #[test]
    fn balanced_load_divides_voltage_evenly() {
        let pdn = build_default(Some(0.2));
        let sim = run_balanced(&pdn, 8.0, 20_000);
        for layer in 0..4 {
            for col in 0..4 {
                let v = pdn.sm_voltage(&sim, layer, col);
                assert!(
                    (v - 1.025).abs() < 0.03,
                    "SM({layer},{col}) at {v} V under balanced load"
                );
            }
        }
    }

    #[test]
    fn imbalance_without_crivr_diverges() {
        let pdn = build_default(None);
        let (v0, g2) = pdn.balanced_initial_state();
        let mut sim = Transient::with_initial_state(
            &pdn.netlist,
            1.0 / 700e6,
            Integration::Trapezoidal,
            &v0,
            &g2,
        )
        .unwrap();
        // Layer 0 heavily loaded, others light.
        for layer in 0..4 {
            for col in 0..4 {
                let amps = if layer == 0 { 10.0 } else { 2.0 };
                sim.set_control(pdn.sm_load[layer][col], amps);
            }
        }
        for _ in 0..50_000 {
            sim.step().unwrap();
        }
        let v_heavy = pdn.sm_voltage(&sim, 0, 0);
        let v_light = pdn.sm_voltage(&sim, 3, 0);
        assert!(
            v_light - v_heavy > 0.5,
            "imbalance must skew layer voltages: {v_heavy} vs {v_light}"
        );
    }

    #[test]
    fn crivr_restores_layer_voltages_under_imbalance() {
        let pdn = build_default(Some(2.0));
        let (v0, g2) = pdn.balanced_initial_state();
        let mut sim = Transient::with_initial_state(
            &pdn.netlist,
            1.0 / 700e6,
            Integration::Trapezoidal,
            &v0,
            &g2,
        )
        .unwrap();
        for layer in 0..4 {
            for col in 0..4 {
                let amps = if layer == 0 { 10.0 } else { 2.0 };
                sim.set_control(pdn.sm_load[layer][col], amps);
            }
        }
        for _ in 0..50_000 {
            sim.step().unwrap();
        }
        let v_heavy = pdn.sm_voltage(&sim, 0, 0);
        assert!(
            v_heavy > 0.8,
            "a 2x CR-IVR must hold the heavy layer above 0.8 V, got {v_heavy}"
        );
        // The recyclers burn conversion loss while shuffling the imbalance.
        assert!(sim.energy().recycler_loss_j > 0.0);
    }

    #[test]
    fn dcc_ballast_raises_its_layer_current() {
        let pdn = build_default(Some(0.2));
        let (v0, g2) = pdn.balanced_initial_state();
        let mut sim = Transient::with_initial_state(
            &pdn.netlist,
            1.0 / 700e6,
            Integration::Trapezoidal,
            &v0,
            &g2,
        )
        .unwrap();
        // Underloaded layer 3; ballast compensates.
        for layer in 0..4 {
            for col in 0..4 {
                let amps = if layer == 3 { 2.0 } else { 8.0 };
                sim.set_control(pdn.sm_load[layer][col], amps);
                if layer == 3 {
                    sim.set_control(pdn.dcc[layer][col], 6.0);
                }
            }
        }
        for _ in 0..30_000 {
            sim.step().unwrap();
        }
        for layer in 0..4 {
            let v = pdn.sm_voltage(&sim, layer, 0);
            assert!((v - 1.025).abs() < 0.1, "layer {layer} at {v} with DCC ballast");
        }
    }

    #[test]
    fn lumped_crivr_serves_remote_imbalance_worse() {
        let run = |n_sub_ivrs: usize| {
            let params = PdnParams::default();
            let am = AreaModel::default();
            let cfg = CrIvrConfig {
                n_sub_ivrs,
                ..CrIvrConfig::sized_by_gpu_area(1.0, &am)
            };
            let pdn = StackedPdn::build(&params, Some((&cfg, &am)));
            let (v0, g2) = pdn.balanced_initial_state();
            let mut sim = Transient::with_initial_state(
                &pdn.netlist,
                1.0 / 700e6,
                Integration::Trapezoidal,
                &v0,
                &g2,
            )
            .unwrap();
            for layer in 0..4 {
                for col in 0..4 {
                    let amps = if layer == 0 && col == 3 { 12.0 } else { 8.0 };
                    sim.set_control(pdn.sm_load[layer][col], amps);
                }
            }
            for _ in 0..40_000 {
                sim.step().unwrap();
            }
            pdn.sm_voltage(&sim, 0, 3)
        };
        let distributed = run(4);
        let lumped = run(1);
        assert!(
            distributed > lumped + 0.01,
            "distribution must help the far column: {distributed} vs {lumped}"
        );
    }

    #[test]
    fn column_recycler_slices_partition_the_ladder() {
        let pdn = build_default(Some(0.2));
        // 4 sub-IVRs on a 4-column, 4-layer stack: 3 stages per column.
        assert_eq!(pdn.n_recycler_columns(), 4);
        let mut seen = Vec::new();
        for col in 0..4 {
            let stages = pdn.column_recyclers(col);
            assert_eq!(stages.len(), 3, "column {col}");
            seen.extend_from_slice(stages);
        }
        assert_eq!(seen, pdn.recyclers);
        assert!(pdn.column_recyclers(7).is_empty());
        let bare = build_default(None);
        assert_eq!(bare.n_recycler_columns(), 0);
        assert!(bare.column_recyclers(0).is_empty());
    }

    #[test]
    fn pdn_loss_is_small_fraction_at_stack_voltage() {
        let pdn = build_default(Some(0.2));
        let sim = run_balanced(&pdn, 8.0, 20_000);
        let e = sim.energy();
        let pdn_loss: f64 = pdn
            .pdn_resistors
            .iter()
            .map(|id| sim.element_absorbed_j(*id))
            .sum();
        // High-voltage delivery: board/package loss is tiny; the residual
        // is the local SM grid drop (which the conventional PDS pays too).
        assert!(pdn_loss > 0.0);
        assert!(
            pdn_loss / e.source_delivered_j < 0.04,
            "loss fraction {}",
            pdn_loss / e.source_delivered_j
        );
    }
}
