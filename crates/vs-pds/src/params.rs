//! Electrical parameters of the power-delivery subsystem and the
//! regulator efficiency curves used in the system-level PDE accounting.
//!
//! Absolute component values are calibrated to a self-consistent operating
//! point (see DESIGN.md): the conventional single-layer PDS loses ~8 % to
//! IR drop at full load and ~13 % in the board VRM, anchoring its PDE near
//! the paper's 80 %; the voltage-stacked PDS carries one quarter of the
//! current through the same parasitics.


/// RLC parasitics and topology constants of the PDN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnParams {
    /// Number of stacked layers (4).
    pub n_layers: usize,
    /// SM columns per layer (4).
    pub n_columns: usize,
    /// Board supply for the stacked configuration, volts (4.1 V).
    pub vdd_stack: f64,
    /// Nominal SM supply, volts (1 V).
    pub v_sm: f64,
    /// Board-plane resistance, ohms.
    pub r_board: f64,
    /// Board-plane inductance, henries.
    pub l_board: f64,
    /// Package + C4 resistance (supply side), ohms.
    pub r_pkg: f64,
    /// Package + C4 inductance (supply side), henries.
    pub l_pkg: f64,
    /// Ground-return resistance, ohms.
    pub r_gnd: f64,
    /// Ground-return inductance, henries.
    pub l_gnd: f64,
    /// Lateral on-chip grid resistance between adjacent columns at the same
    /// stack level, ohms.
    pub r_lateral: f64,
    /// Per-SM local grid resistance in series with each SM terminal
    /// (top and bottom), ohms. Gives the stack component of load current a
    /// finite, resistive effective impedance (Fig. 3's Z_ST).
    pub r_sm_grid: f64,
    /// Effective decoupling capacitance across each (layer, column) domain,
    /// farads. Includes the die *and* package-embedded decap reachable
    /// within nanoseconds; sized so the paper's Fig. 9/10 dynamics
    /// (dip-and-recover at 0.2x CR-IVR area with a 60-cycle loop) hold at
    /// our ~8 A/SM current scale.
    pub c_layer: f64,
    /// Board-level bulk decap at the PCB node, farads.
    pub c_board: f64,
    /// Parasitic node-to-substrate capacitance at each internal stack node,
    /// farads. Breaks the perfect vertical symmetry so the stack component
    /// of the load current produces a finite (small) effective impedance,
    /// as in the paper's Fig. 3.
    pub c_node_gnd: f64,
}

impl Default for PdnParams {
    fn default() -> Self {
        PdnParams {
            n_layers: 4,
            n_columns: 4,
            vdd_stack: 4.1,
            v_sm: 1.0,
            r_board: 0.15e-3,
            l_board: 0.8e-12,
            r_pkg: 0.15e-3,
            l_pkg: 0.2e-12,
            r_gnd: 0.15e-3,
            l_gnd: 0.4e-12,
            r_lateral: 4.0e-3,
            r_sm_grid: 1.0e-3,
            c_layer: 2.5e-6,
            c_board: 100e-6,
            c_node_gnd: 100e-9,
        }
    }
}

impl PdnParams {
    /// Default parameters for an `n_layers` × `n_columns` stack. The board
    /// supply scales with the stack depth so every layer still sees the
    /// nominal per-layer voltage (`vdd_stack / n_layers` is held at the
    /// 4-layer default's 4.1 V / 4 = 1.025 V); all parasitics keep their
    /// calibrated defaults. `with_geometry(4, 4)` is bit-identical to
    /// [`PdnParams::default`].
    pub fn with_geometry(n_layers: usize, n_columns: usize) -> Self {
        let base = PdnParams::default();
        let per_layer_v = base.vdd_stack / base.n_layers as f64;
        PdnParams {
            n_layers,
            n_columns,
            vdd_stack: per_layer_v * n_layers as f64,
            ..base
        }
    }

    /// Total SM count.
    pub fn n_sms(&self) -> usize {
        self.n_layers * self.n_columns
    }

    /// Checks invariants.
    ///
    /// # Panics
    ///
    /// Panics on degenerate topologies or non-positive electrical values.
    pub fn validate(&self) {
        assert!(self.n_layers >= 2 && self.n_columns >= 1);
        assert!(self.vdd_stack > 0.0 && self.v_sm > 0.0);
        for v in [
            self.r_board,
            self.l_board,
            self.r_pkg,
            self.l_pkg,
            self.r_gnd,
            self.l_gnd,
            self.r_lateral,
            self.r_sm_grid,
            self.c_layer,
            self.c_board,
            self.c_node_gnd,
        ] {
            assert!(v > 0.0 && v.is_finite());
        }
    }
}

/// Load-dependent efficiency of the board-level step-down VRM (a
/// multi-phase buck). Peaks mid-load and sags toward both extremes;
/// calibrated so a typical GPU load sees ~87 %, anchoring conventional PDE
/// near 80 % once IR loss is added.
pub fn vrm_efficiency(load_frac: f64) -> f64 {
    let x = load_frac.clamp(0.0, 1.2);
    let eta = 0.885 - 0.06 * (x - 0.45) * (x - 0.45) - 0.012 / (x + 0.08);
    eta.clamp(0.70, 0.89)
}

/// Load-dependent efficiency of a single-layer on-chip switched-capacitor
/// IVR (FIVR-style), anchoring single-layer-IVR PDE near 85 %.
pub fn ivr_efficiency(load_frac: f64) -> f64 {
    let x = load_frac.clamp(0.0, 1.2);
    let eta = 0.93 - 0.045 * (x - 0.5) * (x - 0.5) - 0.008 / (x + 0.1);
    eta.clamp(0.78, 0.93)
}

/// Fraction of delivered power spent in the level-shifted voltage-domain
/// interfaces of a stacked design (paper: < 6 % of memory/cache transistors;
/// switched-capacitor level shifters at 1 GHz). Charged only to stacked
/// configurations.
pub fn level_shifter_fraction() -> f64 {
    0.02
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PdnParams::default().validate();
        assert_eq!(PdnParams::default().n_sms(), 16);
    }

    #[test]
    fn geometry_constructor_matches_defaults_at_4x4() {
        assert_eq!(PdnParams::with_geometry(4, 4), PdnParams::default());
    }

    #[test]
    fn geometry_constructor_scales_supply_with_depth() {
        for (nl, nc) in [(2usize, 8usize), (8, 2), (4, 4)] {
            let p = PdnParams::with_geometry(nl, nc);
            p.validate();
            assert_eq!(p.n_sms(), nl * nc);
            // Per-layer supply share is geometry-invariant.
            let per_layer = p.vdd_stack / nl as f64;
            assert!((per_layer - 1.025).abs() < 1e-12, "per-layer {per_layer}");
        }
    }

    #[test]
    fn vrm_efficiency_is_sane() {
        for load in [0.1, 0.3, 0.5, 0.7, 1.0] {
            let e = vrm_efficiency(load);
            assert!((0.70..=0.90).contains(&e), "eta({load}) = {e}");
        }
        // Typical operating range lands near 87%.
        let typ = vrm_efficiency(0.6);
        assert!((0.85..=0.89).contains(&typ), "typical {typ}");
        // Light load is worse than mid load.
        assert!(vrm_efficiency(0.05) < vrm_efficiency(0.5));
    }

    #[test]
    fn ivr_beats_vrm() {
        for load in [0.2, 0.4, 0.6, 0.8, 1.0] {
            assert!(ivr_efficiency(load) > vrm_efficiency(load), "load {load}");
        }
    }

    #[test]
    fn level_shifter_overhead_is_small() {
        assert!(level_shifter_fraction() < 0.06);
        assert!(level_shifter_fraction() > 0.0);
    }
}
