//! # vs-pds — power-delivery-subsystem models for voltage-stacked GPUs
//!
//! Builds the circuit-level netlists and analytic models of the four PDS
//! configurations the paper compares (Table III):
//!
//! 1. conventional single-layer PDS with a board VRM
//!    ([`SingleLayerPdn`] + [`vrm_efficiency`]),
//! 2. single-layer IVR PDS ([`SingleLayerPdn`] at a higher delivery voltage
//!    + [`ivr_efficiency`]),
//! 3. circuit-only voltage stacking ([`StackedPdn`] with a large
//!    [`CrIvrConfig`]),
//! 4. the cross-layer design ([`StackedPdn`] with a 0.2x CR-IVR, relying on
//!    the architecture loop in `vs-control`).
//!
//! It also provides the effective-impedance characterization of Fig. 3
//! ([`impedance_profile`]) and the die-area accounting ([`AreaModel`]).
//!
//! # Examples
//!
//! ```
//! use vs_pds::{AreaModel, CrIvrConfig, PdnParams, StackedPdn};
//!
//! let params = PdnParams::default();
//! let area = AreaModel::default();
//! let crivr = CrIvrConfig::cross_layer_default(&area);
//! let pdn = StackedPdn::build(&params, Some((&crivr, &area)));
//! assert_eq!(pdn.sm_load.len(), 4);      // four layers
//! assert_eq!(pdn.sm_load[0].len(), 4);   // four columns
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod area;
mod crivr;
mod impedance;
mod params;
mod single_layer;
mod stacked;

pub use area::AreaModel;
pub use crivr::CrIvrConfig;
pub use impedance::{impedance_profile, ImpedanceProfile};
pub use params::{ivr_efficiency, level_shifter_fraction, vrm_efficiency, PdnParams};
pub use single_layer::SingleLayerPdn;
pub use stacked::StackedPdn;
