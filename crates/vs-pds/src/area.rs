//! Die-area accounting (paper Table III).
//!
//! Regulator capacity is silicon: the CR-IVR's effective conductance scales
//! linearly with flying-capacitor area. `g_per_mm2` is calibrated so that
//! suppressing the worst-case imbalance within the 0.2 V guardband by
//! circuit means alone costs ≈ 912 mm² (1.72x the 529 mm² GPU die), the
//! paper's circuit-only figure, while the cross-layer design gets away with
//! 105.8 mm² (0.2x).


/// Maps regulator area to capacity and records the Table III constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// GPU die area, mm² (NVIDIA Fermi-class: 529 mm²).
    pub gpu_die_mm2: f64,
    /// CR-IVR conductance per mm² of flying capacitance, S/mm².
    pub g_per_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            gpu_die_mm2: 529.0,
            g_per_mm2: 0.175,
        }
    }
}

impl AreaModel {
    /// Table III: die-area overhead of the single-layer IVR PDS, mm².
    pub const SINGLE_LAYER_IVR_MM2: f64 = 172.3;
    /// Table III: die-area overhead of the circuit-only VS PDS, mm².
    pub const CIRCUIT_ONLY_MM2: f64 = 912.0;
    /// Table III: die-area overhead of the cross-layer VS PDS, mm².
    pub const CROSS_LAYER_MM2: f64 = 105.8;

    /// Effective CR-IVR conductance bought by `area_mm2`, siemens.
    pub fn conductance_for_area(&self, area_mm2: f64) -> f64 {
        self.g_per_mm2 * area_mm2.max(0.0)
    }

    /// Area needed for a target conductance, mm².
    pub fn area_for_conductance(&self, siemens: f64) -> f64 {
        siemens.max(0.0) / self.g_per_mm2
    }

    /// Area required by a *circuit-only* design to hold the worst-case DC
    /// imbalance `i_imbalance_a` (amperes, per column) within `droop_v`:
    /// the imbalance must flow through the ladder with `ΔV ≤ droop_v`, so
    /// `G_col ≥ I/droop` and the total is `n_columns` times that.
    pub fn circuit_only_area_mm2(
        &self,
        i_imbalance_per_column_a: f64,
        droop_v: f64,
        n_columns: usize,
    ) -> f64 {
        assert!(droop_v > 0.0);
        let g_col = i_imbalance_per_column_a / droop_v;
        self.area_for_conductance(g_col * n_columns as f64)
    }

    /// Overhead relative to the GPU die (the paper quotes 0.2x, 1.72x, ...).
    pub fn as_gpu_multiple(&self, area_mm2: f64) -> f64 {
        area_mm2 / self.gpu_die_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_multiples() {
        let am = AreaModel::default();
        let circuit_only = am.as_gpu_multiple(AreaModel::CIRCUIT_ONLY_MM2);
        assert!((circuit_only - 1.72).abs() < 0.01, "{circuit_only}");
        let cross = am.as_gpu_multiple(AreaModel::CROSS_LAYER_MM2);
        assert!((cross - 0.2).abs() < 0.001, "{cross}");
        let ivr = am.as_gpu_multiple(AreaModel::SINGLE_LAYER_IVR_MM2);
        assert!((ivr - 0.33).abs() < 0.01, "{ivr}");
    }

    #[test]
    fn cross_layer_saves_88_percent() {
        let saving = 1.0 - AreaModel::CROSS_LAYER_MM2 / AreaModel::CIRCUIT_ONLY_MM2;
        assert!((saving - 0.88).abs() < 0.005, "saving {saving}");
    }

    #[test]
    fn circuit_only_sizing_reproduces_table3() {
        // Worst case: one layer's 4 SMs gated, ~8 A per column of imbalance,
        // 0.2 V guardband.
        let am = AreaModel::default();
        let area = am.circuit_only_area_mm2(8.0, 0.2, 4);
        assert!(
            (area - AreaModel::CIRCUIT_ONLY_MM2).abs() / AreaModel::CIRCUIT_ONLY_MM2 < 0.01,
            "calibration drifted: {area} mm²"
        );
    }

    #[test]
    fn conductance_roundtrip() {
        let am = AreaModel::default();
        let g = am.conductance_for_area(100.0);
        assert!((am.area_for_conductance(g) - 100.0).abs() < 1e-9);
    }
}
