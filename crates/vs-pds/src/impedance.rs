//! Effective-impedance characterization of the stacked PDN (paper Fig. 3
//! and Section III-B).
//!
//! A load current anywhere in the stack decomposes into three orthogonal
//! components: a **global** part (even across all SMs), a **stack** part
//! (even across one column, net of global), and a **residual** part (the
//! single-SM remainder — the inter-layer imbalance). Each component sees a
//! different effective impedance; the paper's reliability argument rests on
//! the residual impedance having by far the largest low-frequency peak,
//! which the CR-IVR (and, in the cross-layer design, the voltage-smoothing
//! loop) must suppress.

use vs_circuit::{AcAnalysis, AcStimulus, NetlistError};

use crate::stacked::StackedPdn;

/// Impedance magnitudes over a frequency sweep.
#[derive(Debug, Clone)]
pub struct ImpedanceProfile {
    /// Sweep frequencies, hertz.
    pub freqs: Vec<f64>,
    /// Global effective impedance `Z_G`, ohms (response of one SM's layer
    /// voltage per ampere of total current spread across all SMs).
    pub z_global: Vec<f64>,
    /// Stack effective impedance `Z_ST`, ohms (per ampere spread across one
    /// column).
    pub z_stack: Vec<f64>,
    /// Residual impedance measured at a victim SM in the *same layer* as the
    /// aggressor, ohms.
    pub z_residual_same_layer: Vec<f64>,
    /// Residual impedance measured at a victim SM in a *different layer*,
    /// ohms.
    pub z_residual_diff_layer: Vec<f64>,
}

impl ImpedanceProfile {
    /// Peak of a curve as `(freq_hz, ohms)`.
    pub fn peak(curve: &[f64], freqs: &[f64]) -> (f64, f64) {
        let mut best = (0.0, 0.0);
        for (f, z) in freqs.iter().zip(curve) {
            if *z > best.1 {
                best = (*f, *z);
            }
        }
        best
    }
}

/// Computes the Fig. 3 impedance curves for a stacked PDN (with or without
/// CR-IVR, depending on how `pdn` was built) over `points` log-spaced
/// frequencies in `[f_lo_hz, f_hi_hz]`.
///
/// # Errors
///
/// Returns [`NetlistError`] if an AC solve fails.
pub fn impedance_profile(
    pdn: &StackedPdn,
    f_lo_hz: f64,
    f_hi_hz: f64,
    points: usize,
) -> Result<ImpedanceProfile, NetlistError> {
    let ac = AcAnalysis::new(&pdn.netlist)?;
    let nl = pdn.params.n_layers;
    let nc = pdn.params.n_columns;
    let n_sms = (nl * nc) as f64;

    // Stimulus helpers: a current of `amps` across SM (layer, col).
    let sm_stim = |layer: usize, col: usize, amps: f64| AcStimulus {
        from: pdn.sm_top[layer][col],
        to: pdn.sm_bottom[layer][col],
        amps,
    };

    // Global: 1 A split across all SMs.
    let global: Vec<AcStimulus> = (0..nl)
        .flat_map(|l| (0..nc).map(move |c| (l, c)))
        .map(|(l, c)| sm_stim(l, c, 1.0 / n_sms))
        .collect();
    // Stack: 1 A split across column 0, minus the global component.
    let mut stack: Vec<AcStimulus> = (0..nl).map(|l| sm_stim(l, 0, 1.0 / nl as f64)).collect();
    for s in &global {
        stack.push(AcStimulus {
            from: s.from,
            to: s.to,
            amps: -s.amps,
        });
    }
    // Residual: 1 A on SM(1, 0) minus the even column-0 distribution.
    let aggressor_layer = 1;
    let mut residual: Vec<AcStimulus> = vec![sm_stim(aggressor_layer, 0, 1.0)];
    for l in 0..nl {
        residual.push(AcStimulus {
            from: pdn.sm_top[l][0],
            to: pdn.sm_bottom[l][0],
            amps: -1.0 / nl as f64,
        });
    }

    let freqs = vs_circuit::log_space(f_lo_hz, f_hi_hz, points);
    let mut z_global = Vec::with_capacity(points);
    let mut z_stack = Vec::with_capacity(points);
    let mut z_same = Vec::with_capacity(points);
    let mut z_diff = Vec::with_capacity(points);

    // Victims: the layer voltage across a reference SM.
    let measure = |sol: &vs_circuit::AcSolution, layer: usize, col: usize| {
        sol.voltage_between(pdn.sm_top[layer][col], pdn.sm_bottom[layer][col])
            .abs()
    };

    for f in &freqs {
        let sol_g = ac.solve(*f, &global)?;
        z_global.push(measure(&sol_g, 0, 0));
        let sol_st = ac.solve(*f, &stack)?;
        z_stack.push(measure(&sol_st, 0, 0));
        let sol_r = ac.solve(*f, &residual)?;
        // Same layer as the aggressor, different column.
        z_same.push(measure(&sol_r, aggressor_layer, 1));
        // Different layer, different column.
        z_diff.push(measure(&sol_r, aggressor_layer + 1, 1));
    }

    Ok(ImpedanceProfile {
        freqs,
        z_global,
        z_stack,
        z_residual_same_layer: z_same,
        z_residual_diff_layer: z_diff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaModel;
    use crate::crivr::CrIvrConfig;
    use crate::params::PdnParams;

    fn profile(crivr_mult: Option<f64>) -> ImpedanceProfile {
        let params = PdnParams::default();
        let am = AreaModel::default();
        let pdn = match crivr_mult {
            Some(m) => {
                let cfg = CrIvrConfig::sized_by_gpu_area(m, &am);
                StackedPdn::build(&params, Some((&cfg, &am)))
            }
            None => StackedPdn::build(&params, None),
        };
        impedance_profile(&pdn, 1e4, 500e6, 50).unwrap()
    }

    #[test]
    fn residual_dominates_at_low_frequency_without_crivr() {
        let p = profile(None);
        // At the lowest swept frequency, the residual (imbalance) impedance
        // towers over the global one — the paper's key finding.
        assert!(
            p.z_residual_same_layer[0] > 3.0 * p.z_global[0],
            "residual {} vs global {}",
            p.z_residual_same_layer[0],
            p.z_global[0]
        );
    }

    #[test]
    fn global_impedance_has_mid_frequency_resonance() {
        let p = profile(None);
        let (f_peak, z_peak) = ImpedanceProfile::peak(&p.z_global, &p.freqs);
        // Resonance in the tens-of-MHz range (paper: ~70 MHz).
        assert!(
            (10e6..=300e6).contains(&f_peak),
            "global resonance at {f_peak} Hz"
        );
        assert!(z_peak > p.z_global[0], "peaked above the low-frequency floor");
    }

    #[test]
    fn crivr_suppresses_low_frequency_residual_peak() {
        let without = profile(None);
        let with = profile(Some(1.0));
        assert!(
            with.z_residual_same_layer[0] < 0.2 * without.z_residual_same_layer[0],
            "CR-IVR must crush the DC residual peak: {} vs {}",
            with.z_residual_same_layer[0],
            without.z_residual_same_layer[0]
        );
        // And a bigger CR-IVR suppresses harder.
        let big = profile(Some(2.0));
        assert!(big.z_residual_same_layer[0] < with.z_residual_same_layer[0]);
    }

    #[test]
    fn stack_impedance_is_minor_but_nonzero() {
        let p = profile(None);
        // The stack component is visible (node-to-substrate parasitics) but
        // far below the residual component everywhere.
        let z_st_max = p.z_stack.iter().cloned().fold(0.0, f64::max);
        assert!(z_st_max > 0.0, "stack impedance must be nonzero");
        let z_r_max = p
            .z_residual_same_layer
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        assert!(z_st_max < z_r_max, "residual dominates: {z_st_max} vs {z_r_max}");
    }

    #[test]
    fn high_frequency_impedance_is_decap_limited() {
        let p = profile(None);
        let last = p.freqs.len() - 1;
        // At 500 MHz the local decap shorts everything: small impedance for
        // every component.
        assert!(p.z_residual_same_layer[last] < p.z_residual_same_layer[0]);
        assert!(p.z_global[last] < 0.05);
    }
}
