//! Conventional single-layer PDN netlists: the baseline board-VRM
//! configuration and the single-layer IVR variant.
//!
//! Both deliver power to all 16 SMs in parallel at one voltage level; they
//! differ in where conversion happens (board VRM at ~87 % vs on-chip IVR at
//! ~90 %, accounted analytically via the efficiency curves in
//! [`crate::params`]) and in the current carried by the PDN.

use vs_circuit::{ControlId, ElementId, Netlist, NodeId, Transient};

use crate::params::PdnParams;

/// A built single-layer PDN.
#[derive(Debug, Clone)]
pub struct SingleLayerPdn {
    /// The netlist.
    pub netlist: Netlist,
    /// Topology parameters.
    pub params: PdnParams,
    /// Delivery voltage at the die, volts.
    pub v_delivery: f64,
    /// SM load controls, flat SM order (16 entries, 4 per column).
    pub sm_load: Vec<ControlId>,
    /// SM load elements (for energy accounting).
    pub sm_load_elems: Vec<ElementId>,
    /// Supply-side terminal node of each SM.
    pub sm_node: Vec<NodeId>,
    /// Return-side terminal node of each SM.
    pub sm_return: Vec<NodeId>,
    /// Board source element.
    pub source: ElementId,
    /// Parasitic resistors (PDN-loss accounting).
    pub pdn_resistors: Vec<ElementId>,
    /// Die ground node.
    pub die_gnd: NodeId,
}

impl SingleLayerPdn {
    /// Builds a single-layer PDN delivering `v_delivery` volts at the die
    /// (1 V for the conventional VRM configuration; ~1.7 V for the IVR
    /// configuration whose on-chip conversion is handled analytically).
    pub fn build(params: &PdnParams, v_delivery: f64) -> Self {
        params.validate();
        assert!(v_delivery > 0.0);
        let mut net = Netlist::new();
        let src_pos = net.node("src");
        let pcb = net.node("pcb");
        let pkg_mid = net.node("pkg_mid");
        let die = net.node("die");
        let die_gnd = net.node("die_gnd");
        let gnd_mid = net.node("gnd_mid");
        let source = net.voltage_source(src_pos, Netlist::GROUND, v_delivery);
        let mut pdn_resistors = Vec::new();
        pdn_resistors.push(net.resistor(src_pos, pcb, params.r_board));
        pdn_resistors.push(net.resistor(pcb, pkg_mid, params.r_pkg));
        net.inductor(pkg_mid, die, params.l_board + params.l_pkg);
        net.capacitor(pcb, Netlist::GROUND, params.c_board);
        pdn_resistors.push(net.resistor(die_gnd, gnd_mid, params.r_gnd));
        net.inductor(gnd_mid, Netlist::GROUND, params.l_gnd);

        // One grid node per column, laterally connected, decap to die_gnd.
        let mut col_nodes = Vec::new();
        for col in 0..params.n_columns {
            let n = net.node(format!("col{col}"));
            // Small spreading resistance from the die bump node.
            pdn_resistors.push(net.resistor(die, n, params.r_lateral / 8.0));
            net.capacitor(n, die_gnd, params.c_layer * params.n_layers as f64);
            col_nodes.push(n);
        }
        for col in 0..params.n_columns - 1 {
            net.resistor(col_nodes[col], col_nodes[col + 1], params.r_lateral);
        }

        let mut sm_load = Vec::new();
        let mut sm_load_elems = Vec::new();
        let mut sm_node = Vec::new();
        let mut sm_return = Vec::new();
        for sm in 0..params.n_sms() {
            let col = sm % params.n_columns;
            // The same local SM grid resistance the stacked design pays.
            let t = net.node(format!("sm{sm}t"));
            let b = net.node(format!("sm{sm}b"));
            pdn_resistors.push(net.resistor(col_nodes[col], t, params.r_sm_grid));
            pdn_resistors.push(net.resistor(b, die_gnd, params.r_sm_grid));
            let (e, c) = net.controlled_current_source(t, b);
            sm_load.push(c);
            sm_load_elems.push(e);
            sm_node.push(t);
            sm_return.push(b);
        }

        SingleLayerPdn {
            netlist: net,
            params: *params,
            v_delivery,
            sm_load,
            sm_load_elems,
            sm_node,
            sm_return,
            source,
            pdn_resistors,
            die_gnd,
        }
    }

    /// Supply voltage seen by SM `sm` in a running transient.
    pub fn sm_voltage(&self, sim: &Transient, sm: usize) -> f64 {
        sim.voltage(self.sm_node[sm]) - sim.voltage(self.sm_return[sm])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_circuit::Integration;

    #[test]
    fn delivers_near_nominal_under_load() {
        let params = PdnParams::default();
        let pdn = SingleLayerPdn::build(&params, 1.0);
        let mut sim = Transient::new(&pdn.netlist, 1.0 / 700e6, Integration::Trapezoidal).unwrap();
        for c in &pdn.sm_load {
            sim.set_control(*c, 8.0); // 128 A total at 1 V
        }
        for _ in 0..50_000 {
            sim.step().unwrap();
        }
        let v = pdn.sm_voltage(&sim, 0);
        // IR drop at 128 A through ~0.7 mOhm total is ~0.1 V.
        assert!(v > 0.85 && v < 1.0, "die voltage {v}");
    }

    #[test]
    fn ir_loss_fraction_matches_calibration() {
        // Conventional 1 V delivery at full load should lose roughly 6-10%
        // in the PDN (the paper's conventional PDS loses >20% including the
        // VRM).
        let params = PdnParams::default();
        let pdn = SingleLayerPdn::build(&params, 1.0);
        let mut sim = Transient::new(&pdn.netlist, 1.0 / 700e6, Integration::Trapezoidal).unwrap();
        for c in &pdn.sm_load {
            sim.set_control(*c, 8.0);
        }
        for _ in 0..50_000 {
            sim.step().unwrap();
        }
        let e = sim.energy();
        let pdn_loss: f64 = pdn
            .pdn_resistors
            .iter()
            .map(|id| sim.element_absorbed_j(*id))
            .sum();
        let frac = pdn_loss / e.source_delivered_j;
        assert!((0.04..=0.12).contains(&frac), "PDN loss fraction {frac}");
    }

    #[test]
    fn higher_delivery_voltage_cuts_loss() {
        let params = PdnParams::default();
        let run = |v: f64, amps: f64| {
            let pdn = SingleLayerPdn::build(&params, v);
            let mut sim =
                Transient::new(&pdn.netlist, 1.0 / 700e6, Integration::Trapezoidal).unwrap();
            for c in &pdn.sm_load {
                sim.set_control(*c, amps);
            }
            for _ in 0..20_000 {
                sim.step().unwrap();
            }
            let loss: f64 = pdn
                .pdn_resistors
                .iter()
                .map(|id| sim.element_absorbed_j(*id))
                .sum();
            loss / sim.energy().source_delivered_j
        };
        // Same 128 W of SM power: at 1 V it is 128 A; at 1.7 V only 75 A.
        let frac_1v = run(1.0, 8.0);
        let frac_17v = run(1.7, 8.0 / 1.7);
        assert!(frac_17v < frac_1v * 0.5, "{frac_1v} vs {frac_17v}");
    }
}
