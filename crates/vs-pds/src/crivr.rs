//! Charge-recycling integrated voltage regulator (CR-IVR) configuration.
//!
//! The CR-IVR is a reconfigurable switched-capacitor ladder (paper Fig. 2)
//! distributed as four sub-IVRs whose outputs feed each SM column. Its
//! regulation strength is the effective conductance `G = f_sw * C_fly`,
//! which scales linearly with the flying-capacitor area — the basis of the
//! paper's area/reliability trade-off (Table III, Figs. 9–10).


use crate::area::AreaModel;

/// CR-IVR sizing and electrical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrIvrConfig {
    /// Total die area spent on the CR-IVR, mm².
    pub area_mm2: f64,
    /// Switching frequency, hertz.
    pub f_sw_hz: f64,
    /// Number of distributed sub-IVRs (one per column; Fig. 2 uses 4).
    pub n_sub_ivrs: usize,
    /// Fixed overhead power per siemens of regulation capacity (gate drive
    /// and control), watts per siemens.
    pub overhead_w_per_siemens: f64,
}

impl CrIvrConfig {
    /// A CR-IVR sized to `multiple` of the GPU die area (the paper speaks in
    /// these units: 0.2x, 0.8x, 1x, 2x).
    pub fn sized_by_gpu_area(multiple: f64, area_model: &AreaModel) -> Self {
        CrIvrConfig {
            area_mm2: multiple * area_model.gpu_die_mm2,
            f_sw_hz: 100e6,
            n_sub_ivrs: 4,
            overhead_w_per_siemens: 0.004,
        }
    }

    /// The paper's chosen cross-layer operating point: 0.2x GPU area.
    pub fn cross_layer_default(area_model: &AreaModel) -> Self {
        Self::sized_by_gpu_area(0.2, area_model)
    }

    /// Total effective conductance `G` in siemens for this area.
    pub fn total_conductance(&self, area_model: &AreaModel) -> f64 {
        area_model.conductance_for_area(self.area_mm2)
    }

    /// Per-stage conductance when the total capacity is split across
    /// `n_ladders` ladders (the netlist builder uses `n_sub_ivrs`).
    pub fn stage_conductance(&self, area_model: &AreaModel, n_ladders: usize) -> f64 {
        self.total_conductance(area_model) / n_ladders.max(1) as f64
    }

    /// Static overhead power of the regulator (control + gate drive), watts.
    pub fn overhead_power_w(&self, area_model: &AreaModel) -> f64 {
        self.overhead_w_per_siemens * self.total_conductance(area_model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_circuit::{Integration, Netlist, Transient, Waveform};

    #[test]
    fn conductance_scales_linearly_with_area() {
        let am = AreaModel::default();
        let small = CrIvrConfig::sized_by_gpu_area(0.2, &am);
        let large = CrIvrConfig::sized_by_gpu_area(2.0, &am);
        let ratio = large.total_conductance(&am) / small.total_conductance(&am);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn averaged_model_matches_discrete_switched_ladder() {
        // Validation of the averaged ChargeRecycler element: a two-layer
        // stack regulated by an explicit two-phase switched flying capacitor
        // must settle to (nearly) the same midpoint voltage as the averaged
        // G = f_sw * C_fly model.
        let f_sw = 50e6;
        let c_fly = 100e-9;
        let g = f_sw * c_fly; // 5 S

        // Averaged model.
        let mid_avg = {
            let mut net = Netlist::new();
            let top = net.node("top");
            let mid = net.node("mid");
            net.voltage_source(top, Netlist::GROUND, 2.0);
            net.capacitor(top, mid, 1e-6);
            net.capacitor(mid, Netlist::GROUND, 1e-6);
            net.current_source(top, mid, Waveform::Dc(2.0));
            net.current_source(mid, Netlist::GROUND, Waveform::Dc(0.5));
            net.charge_recycler(top, mid, Netlist::GROUND, g);
            let v0 = vec![0.0, 2.0, 1.0];
            let mut sim =
                Transient::with_initial_state(&net, 1e-9, Integration::Trapezoidal, &v0, &[0.0])
                    .unwrap();
            sim.run(20_000).unwrap();
            sim.voltage(mid)
        };

        // Discrete switched ladder: flying cap alternates across the upper
        // and lower layer through switches toggled at f_sw.
        let mid_disc = {
            let mut net = Netlist::new();
            let top = net.node("top");
            let mid = net.node("mid");
            let fly_p = net.node("fly_p");
            let fly_n = net.node("fly_n");
            net.voltage_source(top, Netlist::GROUND, 2.0);
            net.capacitor(top, mid, 1e-6);
            net.capacitor(mid, Netlist::GROUND, 1e-6);
            net.current_source(top, mid, Waveform::Dc(2.0));
            net.current_source(mid, Netlist::GROUND, Waveform::Dc(0.5));
            net.capacitor(fly_p, fly_n, c_fly);
            // Phase A switches: fly across (top, mid).
            let sa1 = net.switch(fly_p, top, 1e-3, 1e9, true);
            let sa2 = net.switch(fly_n, mid, 1e-3, 1e9, true);
            // Phase B switches: fly across (mid, gnd).
            let sb1 = net.switch(fly_p, mid, 1e-3, 1e9, false);
            let sb2 = net.switch(fly_n, Netlist::GROUND, 1e-3, 1e9, false);
            // Bleed to keep the flying nodes defined at DC.
            net.resistor(fly_p, mid, 1e6);
            net.resistor(fly_n, Netlist::GROUND, 1e6);
            let v0 = vec![0.0, 2.0, 1.0, 2.0, 1.0];
            let mut sim =
                Transient::with_initial_state(&net, 1e-9, Integration::BackwardEuler, &v0, &[0.0])
                    .unwrap();
            let half_period_steps = (0.5 / f_sw / 1e-9) as usize; // 10 steps
            let mut phase_a = true;
            for _ in 0..2_000 {
                for _ in 0..half_period_steps {
                    sim.step().unwrap();
                }
                phase_a = !phase_a;
                sim.set_switch(sa1, phase_a).unwrap();
                sim.set_switch(sa2, phase_a).unwrap();
                sim.set_switch(sb1, !phase_a).unwrap();
                sim.set_switch(sb2, !phase_a).unwrap();
            }
            sim.voltage(mid)
        };

        // Both regulate the midpoint toward 1 V; they should agree within
        // ~10 % of the deviation scale.
        assert!(
            (mid_avg - mid_disc).abs() < 0.12,
            "averaged {mid_avg} vs discrete {mid_disc}"
        );
        // And both must actually be regulating (imbalance is 1.5 A; without
        // regulation the midpoint would collapse far from 1 V).
        assert!((mid_avg - 1.0).abs() < 0.45, "averaged not regulating: {mid_avg}");
    }

    #[test]
    fn overhead_power_scales_with_size() {
        let am = AreaModel::default();
        let small = CrIvrConfig::sized_by_gpu_area(0.2, &am);
        let large = CrIvrConfig::sized_by_gpu_area(1.0, &am);
        assert!(large.overhead_power_w(&am) > small.overhead_power_w(&am));
    }
}
