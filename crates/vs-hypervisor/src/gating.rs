//! Execution-unit power-gating policy (a simplified Warped Gates
//! [Abdel-Majeed et al., MICRO'13], the paper's Section V PG baseline).
//!
//! The gating mechanism itself (idle-detect counters, wake latency, the
//! GATES two-level scheduler) lives in the SM model (`vs_gpu::Sm`); this
//! module holds the policy knobs and the break-even accounting that decides
//! whether gating paid off.

use vs_gpu::SmCycleStats;
use vs_power::PowerModel;

/// Power-gating policy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgConfig {
    /// Master enable.
    pub enabled: bool,
    /// Idle cycles before a unit is gated (Warped Gates' idle-detect).
    pub idle_detect_cycles: u32,
    /// Cycles of saved leakage needed to amortize one wake-up (break-even).
    pub break_even_cycles: u32,
    /// Use the gating-aware two-level (GATES) scheduler.
    pub gates_scheduler: bool,
}

impl PgConfig {
    /// Appends this config's stable identity key: the bit patterns of every
    /// field in declaration order. Unlike `Debug` output, the encoding is
    /// part of the API contract; the exhaustive destructuring makes adding
    /// a field without extending the key a compile error.
    pub fn stable_key_into(&self, out: &mut Vec<u64>) {
        let PgConfig { enabled, idle_detect_cycles, break_even_cycles, gates_scheduler } = *self;
        out.extend([
            u64::from(enabled),
            u64::from(idle_detect_cycles),
            u64::from(break_even_cycles),
            u64::from(gates_scheduler),
        ]);
    }
}

impl Default for PgConfig {
    fn default() -> Self {
        PgConfig {
            enabled: true,
            idle_detect_cycles: 5,
            break_even_cycles: 14,
            gates_scheduler: true,
        }
    }
}

/// Accumulates gating outcomes over a run.
#[derive(Debug, Clone, Default)]
pub struct GatingAccountant {
    /// Gated unit-cycles observed (one per gated unit per cycle).
    pub gated_unit_cycles: u64,
    /// Wake-ups observed.
    pub wakeups: u64,
    /// Total cycles observed.
    pub cycles: u64,
}

impl GatingAccountant {
    /// Creates an empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one SM-cycle of stats.
    pub fn record(&mut self, s: &SmCycleStats) {
        self.cycles += 1;
        self.gated_unit_cycles += u64::from(s.sp_gated) + u64::from(s.sfu_gated) + u64::from(s.lsu_gated);
        self.wakeups += u64::from(s.unit_wakeups);
    }

    /// Net leakage energy saved, joules: leakage avoided while gated minus
    /// the wake-up costs. Uses the average per-unit leakage share from the
    /// power model.
    pub fn net_energy_saved_j(&self, model: &PowerModel) -> f64 {
        let t = model.table();
        let avg_unit_leak = (t.p_leak_sp + t.p_leak_sfu + t.p_leak_lsu) / 3.0;
        let dt = 1.0 / model.clock_hz();
        let saved = self.gated_unit_cycles as f64 * avg_unit_leak * dt;
        let cost = self.wakeups as f64 * t.e_wakeup;
        saved - cost
    }

    /// Average cycles a unit stays gated per wake-up; gating is profitable
    /// when this exceeds the break-even threshold.
    pub fn avg_gated_stretch(&self) -> f64 {
        if self.wakeups == 0 {
            self.gated_unit_cycles as f64
        } else {
            self.gated_unit_cycles as f64 / self.wakeups as f64
        }
    }

    /// True when the observed gating behaviour amortizes its wake-ups.
    pub fn beats_break_even(&self, cfg: &PgConfig) -> bool {
        self.avg_gated_stretch() >= f64::from(cfg.break_even_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(gated: bool, wakeups: u8) -> SmCycleStats {
        SmCycleStats {
            active: true,
            sfu_gated: gated,
            unit_wakeups: wakeups,
            ..SmCycleStats::default()
        }
    }

    #[test]
    fn long_gated_stretches_save_energy() {
        let model = PowerModel::fermi_40nm();
        let mut acc = GatingAccountant::new();
        // 10_000 gated cycles, 3 wakeups.
        for i in 0..10_000u32 {
            acc.record(&stats(true, u8::from(i % 3_333 == 0)));
        }
        assert!(acc.net_energy_saved_j(&model) > 0.0);
        assert!(acc.beats_break_even(&PgConfig::default()));
    }

    #[test]
    fn thrashing_wakeups_lose_energy() {
        let model = PowerModel::fermi_40nm();
        let mut acc = GatingAccountant::new();
        // Gated one cycle per wake-up: pure thrash.
        for _ in 0..1_000 {
            acc.record(&stats(true, 1));
        }
        assert!(acc.net_energy_saved_j(&model) < 0.0);
        assert!(!acc.beats_break_even(&PgConfig::default()));
    }

    #[test]
    fn default_config_matches_warped_gates() {
        let cfg = PgConfig::default();
        assert_eq!(cfg.idle_detect_cycles, 5);
        assert_eq!(cfg.break_even_cycles, 14);
        assert!(cfg.gates_scheduler);
    }
}
