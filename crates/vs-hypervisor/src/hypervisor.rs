//! The VS-aware power-management hypervisor (paper Algorithm 2).
//!
//! Sits between the OS-level power optimizers (DFS, power gating) and the
//! voltage-stacked GPU. Frequency and gating commands are remapped so the
//! power drawn by vertically-stacked SMs in the same column never diverges
//! beyond a budget — large divergence would force the CR-IVR to shuttle the
//! difference (energy loss) or trigger voltage-smoothing throttles
//! (performance loss). The budget adapts to observed smoothing activity.


/// Hypervisor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypervisorConfig {
    /// Stack layers (4).
    pub n_layers: usize,
    /// Columns (4).
    pub n_columns: usize,
    /// Base clock, hertz.
    pub base_hz: f64,
    /// Baseline allowed frequency spread within a column, hertz.
    pub f_threshold_hz: f64,
    /// Baseline allowed per-column spread of gated-SM counts
    /// (leakage-imbalance proxy).
    pub gate_threshold: usize,
}

impl HypervisorConfig {
    /// Appends this config's stable identity key: the bit patterns of every
    /// field in declaration order. Unlike `Debug` output, the encoding is
    /// part of the API contract; the exhaustive destructuring makes adding
    /// a field without extending the key a compile error.
    pub fn stable_key_into(&self, out: &mut Vec<u64>) {
        let HypervisorConfig { n_layers, n_columns, base_hz, f_threshold_hz, gate_threshold } =
            *self;
        out.extend([
            n_layers as u64,
            n_columns as u64,
            base_hz.to_bits(),
            f_threshold_hz.to_bits(),
            gate_threshold as u64,
        ]);
    }
}

impl Default for HypervisorConfig {
    fn default() -> Self {
        HypervisorConfig {
            n_layers: 4,
            n_columns: 4,
            base_hz: 700e6,
            f_threshold_hz: 150e6,
            gate_threshold: 1,
        }
    }
}

/// Outcome of one command-mapping pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MappingStats {
    /// SM frequencies raised to respect the imbalance budget.
    pub freq_adjustments: usize,
    /// Gating requests vetoed.
    pub gates_vetoed: usize,
}

/// The Algorithm-2 command mapper.
#[derive(Debug, Clone)]
pub struct VsAwareHypervisor {
    cfg: HypervisorConfig,
    /// Dynamic budget scale in `[0.5, 2]`; shrinks when voltage smoothing is
    /// throttling a lot (be stricter) and relaxes when it is quiet.
    budget_scale: f64,
}

impl VsAwareHypervisor {
    /// Creates a hypervisor.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate topology.
    pub fn new(cfg: HypervisorConfig) -> Self {
        assert!(cfg.n_layers >= 2 && cfg.n_columns >= 1);
        VsAwareHypervisor {
            cfg,
            budget_scale: 1.0,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> HypervisorConfig {
        self.cfg
    }

    /// Current frequency-spread budget, hertz.
    pub fn freq_budget_hz(&self) -> f64 {
        self.cfg.f_threshold_hz * self.budget_scale
    }

    /// Feeds back the voltage-smoothing throttle fraction (from
    /// `vs_control::VoltageController::throttle_fraction`): heavy throttling
    /// tightens the imbalance budget, idle smoothing relaxes it (the paper's
    /// dynamic budget adjustment).
    pub fn observe_throttle_fraction(&mut self, frac: f64) {
        let f = frac.clamp(0.0, 1.0);
        // Map 0 -> relax toward 2.0, 0.2+ -> tighten toward 0.5.
        let target = if f > 0.2 { 0.5 } else { 2.0 - 7.5 * f };
        self.budget_scale += 0.25 * (target - self.budget_scale);
        self.budget_scale = self.budget_scale.clamp(0.5, 2.0);
    }

    /// Remaps per-SM frequency and gating commands (layer-major, length
    /// `n_layers * n_columns`) in place so each column respects the
    /// imbalance budget. Returns what was changed.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the topology.
    pub fn map_commands(&self, freq_hz: &mut [f64], gate: &mut [bool]) -> MappingStats {
        let n = self.cfg.n_layers * self.cfg.n_columns;
        assert_eq!(freq_hz.len(), n);
        assert_eq!(gate.len(), n);
        let mut stats = MappingStats::default();
        let budget = self.freq_budget_hz();

        for col in 0..self.cfg.n_columns {
            let idx = |layer: usize| layer * self.cfg.n_columns + col;
            // Frequency: raise stragglers to within `budget` of the column
            // max (Algorithm 2 raises the slow SM rather than slowing the
            // fast one, preserving the performance optimum).
            let f_max = (0..self.cfg.n_layers)
                .map(|l| freq_hz[idx(l)])
                .fold(0.0, f64::max);
            for l in 0..self.cfg.n_layers {
                let i = idx(l);
                if f_max - freq_hz[i] > budget {
                    freq_hz[i] = f_max - budget;
                    stats.freq_adjustments += 1;
                }
            }
            // Gating: bound the spread of gated-SM counts per layer within
            // the column. With one SM per (layer, column) this reduces to:
            // veto gating unless the whole column gates together or the
            // threshold allows the spread.
            let gated: usize = (0..self.cfg.n_layers).map(|l| usize::from(gate[idx(l)])).sum();
            let ungated = self.cfg.n_layers - gated;
            if gated > 0 && ungated > 0 && gated.min(ungated) > 0 {
                // Mixed column: allowed only if the minority side is within
                // the gate threshold.
                let spread_ok = gated <= self.cfg.gate_threshold
                    || ungated <= self.cfg.gate_threshold;
                if !spread_ok {
                    for l in 0..self.cfg.n_layers {
                        let i = idx(l);
                        if gate[i] {
                            gate[i] = false;
                            stats.gates_vetoed += 1;
                        }
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv() -> VsAwareHypervisor {
        VsAwareHypervisor::new(HypervisorConfig::default())
    }

    #[test]
    fn uniform_commands_pass_through() {
        let h = hv();
        let mut f = vec![500e6; 16];
        let mut g = vec![false; 16];
        let stats = h.map_commands(&mut f, &mut g);
        assert_eq!(stats, MappingStats::default());
        assert!(f.iter().all(|x| (*x - 500e6).abs() < 1.0));
    }

    #[test]
    fn straggler_frequency_is_raised() {
        let h = hv();
        let mut f = vec![700e6; 16];
        f[0] = 200e6; // SM(0,0): 500 MHz below its column peers
        let mut g = vec![false; 16];
        let stats = h.map_commands(&mut f, &mut g);
        assert_eq!(stats.freq_adjustments, 1);
        assert!((f[0] - (700e6 - h.freq_budget_hz())).abs() < 1.0);
    }

    #[test]
    fn spread_within_budget_untouched() {
        let h = hv();
        let mut f = vec![700e6; 16];
        f[4] = 600e6; // 100 MHz below: inside the 150 MHz budget
        let mut g = vec![false; 16];
        let stats = h.map_commands(&mut f, &mut g);
        assert_eq!(stats.freq_adjustments, 0);
        assert!((f[4] - 600e6).abs() < 1.0);
    }

    #[test]
    fn balanced_split_gating_is_vetoed() {
        let h = hv();
        let mut f = vec![700e6; 16];
        // Column 0: two of four layers gated -> a 2 vs 2 split exceeds the
        // gate threshold of 1 on both sides, so the gates are vetoed.
        let mut g = vec![false; 16];
        g[0] = true;
        g[4] = true;
        let stats = h.map_commands(&mut f, &mut g);
        assert_eq!(stats.gates_vetoed, 2);
        assert!(!g[0] && !g[4]);
    }

    #[test]
    fn three_vs_one_gating_is_allowed() {
        // 3 gated vs 1 ungated has the same imbalance magnitude as 1 vs 3:
        // one layer differs from the rest, within the threshold.
        let h = hv();
        let mut f = vec![700e6; 16];
        let mut g = vec![false; 16];
        g[0] = true;
        g[4] = true;
        g[8] = true;
        let stats = h.map_commands(&mut f, &mut g);
        assert_eq!(stats.gates_vetoed, 0);
    }

    #[test]
    fn single_gate_within_threshold_allowed() {
        let h = hv();
        let mut f = vec![700e6; 16];
        let mut g = vec![false; 16];
        g[0] = true; // 1 vs 3: minority side within threshold 1
        let stats = h.map_commands(&mut f, &mut g);
        assert_eq!(stats.gates_vetoed, 0);
        assert!(g[0]);
    }

    #[test]
    fn whole_column_gating_allowed() {
        let h = hv();
        let mut f = vec![700e6; 16];
        let mut g = vec![false; 16];
        for l in 0..4 {
            g[l * 4] = true; // all of column 0
        }
        let stats = h.map_commands(&mut f, &mut g);
        assert_eq!(stats.gates_vetoed, 0);
    }

    #[test]
    fn budget_tightens_under_throttling() {
        let mut h = hv();
        let relaxed = h.freq_budget_hz();
        for _ in 0..20 {
            h.observe_throttle_fraction(0.5);
        }
        let tight = h.freq_budget_hz();
        assert!(tight < relaxed, "{tight} !< {relaxed}");
        for _ in 0..40 {
            h.observe_throttle_fraction(0.0);
        }
        assert!(h.freq_budget_hz() > tight);
    }
}
