//! Epoch-based per-SM dynamic frequency scaling (a simplified GRAPE
//! [Santriaji & Hoffmann, MICRO'16], as used in the paper's Section VI-D).
//!
//! Every 4096-cycle decision epoch the governor compares each SM's retired
//! instructions against a performance goal (a fraction of its observed
//! full-speed throughput) and steps the SM clock up or down in 50 MHz
//! increments — minimizing clock energy subject to the performance
//! requirement.


/// DFS governor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsConfig {
    /// Base (maximum) clock, hertz (700 MHz).
    pub base_hz: f64,
    /// Frequency step, hertz (50 MHz, as in GRAPE).
    pub step_hz: f64,
    /// Minimum clock, hertz.
    pub min_hz: f64,
    /// Decision period in cycles (4096, as in GRAPE).
    pub epoch_cycles: u64,
    /// Performance goal as a fraction of full-speed throughput (Fig. 17
    /// evaluates 70 %, 50 %, 20 %).
    pub perf_goal: f64,
}

impl DfsConfig {
    /// Appends this config's stable identity key: the bit patterns of every
    /// field in declaration order. Unlike `Debug` output, the encoding is
    /// part of the API contract; the exhaustive destructuring makes adding
    /// a field without extending the key a compile error.
    pub fn stable_key_into(&self, out: &mut Vec<u64>) {
        let DfsConfig { base_hz, step_hz, min_hz, epoch_cycles, perf_goal } = *self;
        out.extend([
            base_hz.to_bits(),
            step_hz.to_bits(),
            min_hz.to_bits(),
            epoch_cycles,
            perf_goal.to_bits(),
        ]);
    }

    /// The paper's experimental setting with a given performance goal.
    ///
    /// # Panics
    ///
    /// Panics if `perf_goal` is outside `(0, 1]`.
    pub fn with_goal(perf_goal: f64) -> Self {
        assert!(perf_goal > 0.0 && perf_goal <= 1.0);
        DfsConfig {
            base_hz: 700e6,
            step_hz: 50e6,
            min_hz: 100e6,
            epoch_cycles: 4096,
            perf_goal,
        }
    }
}

/// Per-SM DFS state machine.
#[derive(Debug, Clone)]
pub struct DfsGovernor {
    cfg: DfsConfig,
    freq_hz: Vec<f64>,
    /// Best observed full-speed-equivalent instruction rate per SM
    /// (instructions per base-clock cycle).
    peak_rate: Vec<f64>,
}

impl DfsGovernor {
    /// Creates a governor for `n_sms` SMs, all at base frequency.
    pub fn new(cfg: DfsConfig, n_sms: usize) -> Self {
        DfsGovernor {
            cfg,
            freq_hz: vec![cfg.base_hz; n_sms],
            peak_rate: vec![0.0; n_sms],
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> DfsConfig {
        self.cfg
    }

    /// Current per-SM frequencies, hertz.
    pub fn frequencies_hz(&self) -> &[f64] {
        &self.freq_hz
    }

    /// Current per-SM frequency as a fraction of base clock (feed to
    /// `SmControl::freq_scale`).
    pub fn freq_scales(&self) -> Vec<f64> {
        self.freq_hz.iter().map(|f| f / self.cfg.base_hz).collect()
    }

    /// Ends an epoch: `instructions` is each SM's retired-instruction count
    /// over the epoch. Updates and returns the new frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `instructions.len()` differs from the SM count.
    pub fn on_epoch(&mut self, instructions: &[u64]) -> &[f64] {
        assert_eq!(instructions.len(), self.freq_hz.len());
        let epoch = self.cfg.epoch_cycles as f64;
        for (i, &instr) in instructions.iter().enumerate() {
            let achieved_rate = instr as f64 / epoch;
            // Learn the full-speed capability only while actually running at
            // base clock, and smooth it: bursty benchmarks would otherwise
            // poison a running max and pin the target unreachably high.
            if self.freq_hz[i] >= 0.99 * self.cfg.base_hz {
                if self.peak_rate[i] <= 0.0 {
                    self.peak_rate[i] = achieved_rate;
                } else {
                    self.peak_rate[i] = 0.9 * self.peak_rate[i] + 0.1 * achieved_rate;
                }
            }
            if self.peak_rate[i] <= 0.0 {
                continue; // idle SM: leave at current frequency
            }
            let achieved = achieved_rate;
            let target = self.cfg.perf_goal * self.peak_rate[i];
            if achieved < target * 0.98 {
                self.freq_hz[i] = (self.freq_hz[i] + self.cfg.step_hz).min(self.cfg.base_hz);
            } else if achieved > target * 1.05 {
                self.freq_hz[i] = (self.freq_hz[i] - self.cfg.step_hz).max(self.cfg.min_hz);
            }
            // Quantize to the step grid.
            self.freq_hz[i] =
                (self.freq_hz[i] / self.cfg.step_hz).round() * self.cfg.step_hz;
        }
        &self.freq_hz
    }

    /// Overrides one SM's frequency (used by the VS-aware hypervisor's
    /// command remapping).
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn set_frequency(&mut self, sm: usize, hz: f64) {
        self.freq_hz[sm] = hz.clamp(self.cfg.min_hz, self.cfg.base_hz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates an SM whose throughput is memory-bound above 400 MHz (extra
    /// clock speed is wasted).
    fn memory_bound_instr(freq_hz: f64, epoch: u64) -> u64 {
        let effective = freq_hz.min(400e6);
        (epoch as f64 * 1.2 * effective / 700e6) as u64
    }

    #[test]
    fn governor_converges_below_base_for_memory_bound_sm() {
        let cfg = DfsConfig::with_goal(0.95);
        let mut gov = DfsGovernor::new(cfg, 1);
        for _ in 0..100 {
            let instr = memory_bound_instr(gov.frequencies_hz()[0], cfg.epoch_cycles);
            gov.on_epoch(&[instr]);
        }
        let f = gov.frequencies_hz()[0];
        assert!(
            f < 600e6,
            "memory-bound SM should settle well below base: {f}"
        );
        assert!(f >= 350e6, "but not starve the target: {f}");
    }

    #[test]
    fn lower_perf_goal_means_lower_frequency() {
        let run = |goal: f64| {
            let cfg = DfsConfig::with_goal(goal);
            let mut gov = DfsGovernor::new(cfg, 1);
            for _ in 0..200 {
                // Compute-bound SM: throughput proportional to frequency.
                let f = gov.frequencies_hz()[0];
                let instr = (cfg.epoch_cycles as f64 * 1.5 * f / 700e6) as u64;
                gov.on_epoch(&[instr]);
            }
            gov.frequencies_hz()[0]
        };
        let f70 = run(0.7);
        let f50 = run(0.5);
        let f20 = run(0.2);
        assert!(f70 > f50 && f50 > f20, "{f70} {f50} {f20}");
        // Rough proportionality to the goal for compute-bound code.
        assert!((f70 / 700e6 - 0.7).abs() < 0.15, "f70 = {f70}");
        assert!((f20 / 700e6 - 0.2).abs() < 0.15, "f20 = {f20}");
    }

    #[test]
    fn frequencies_stay_on_step_grid() {
        let cfg = DfsConfig::with_goal(0.5);
        let mut gov = DfsGovernor::new(cfg, 4);
        for e in 0..50u64 {
            let instr: Vec<u64> = (0..4).map(|i| 1000 + 100 * i + e).collect();
            gov.on_epoch(&instr);
        }
        for f in gov.frequencies_hz() {
            let steps = f / cfg.step_hz;
            assert!((steps - steps.round()).abs() < 1e-9, "{f}");
        }
    }

    #[test]
    fn freq_scale_conversion() {
        let cfg = DfsConfig::with_goal(1.0);
        let mut gov = DfsGovernor::new(cfg, 2);
        gov.set_frequency(0, 350e6);
        let scales = gov.freq_scales();
        assert!((scales[0] - 0.5).abs() < 1e-9);
        assert!((scales[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_sm_keeps_frequency() {
        let cfg = DfsConfig::with_goal(0.5);
        let mut gov = DfsGovernor::new(cfg, 1);
        for _ in 0..10 {
            gov.on_epoch(&[0]);
        }
        assert!((gov.frequencies_hz()[0] - cfg.base_hz).abs() < 1.0);
    }
}
