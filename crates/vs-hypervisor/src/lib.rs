//! # vs-hypervisor — collaborative power management for voltage-stacked GPUs
//!
//! The system-level layer of the cross-layer solution (paper Sections IV-D3
//! and VI-D): higher-level power optimizers were traditionally considered
//! incompatible with voltage stacking because their per-SM decisions create
//! inter-layer current imbalance. This crate provides
//!
//! * [`DfsGovernor`] — an epoch-based per-SM dynamic-frequency-scaling
//!   governor in the style of GRAPE (50 MHz steps, 4096-cycle epochs,
//!   performance-goal tracking),
//! * [`PgConfig`] / [`GatingAccountant`] — Warped-Gates-style execution-unit
//!   power gating policy and break-even accounting, and
//! * [`VsAwareHypervisor`] — the Algorithm-2 command mapper that bounds the
//!   per-column frequency and leakage imbalance these optimizers may
//!   introduce, with a budget that adapts to voltage-smoothing throttle
//!   feedback.
//!
//! # Examples
//!
//! ```
//! use vs_hypervisor::{HypervisorConfig, VsAwareHypervisor};
//!
//! let hv = VsAwareHypervisor::new(HypervisorConfig::default());
//! let mut freqs = vec![700e6; 16];
//! freqs[0] = 200e6; // an OS request that would unbalance column 0
//! let mut gates = vec![false; 16];
//! let stats = hv.map_commands(&mut freqs, &mut gates);
//! assert_eq!(stats.freq_adjustments, 1);
//! assert!(freqs[0] > 200e6); // raised to respect the imbalance budget
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dfs;
mod gating;
mod hypervisor;

pub use dfs::{DfsConfig, DfsGovernor};
pub use gating::{GatingAccountant, PgConfig};
pub use hypervisor::{HypervisorConfig, MappingStats, VsAwareHypervisor};
