//! Collaborative power management (the paper's Section VI-D): run DFS on
//! the voltage-stacked GPU through the VS-aware hypervisor and compare the
//! energy bill with DFS on the conventional PDS.
//!
//! Run with: `cargo run --release --example collaborative_power_management`

use vs_core::{Cosim, CosimConfig, PdsKind, PowerManagement, ScenarioId};
use vs_hypervisor::DfsConfig;

fn main() {
    let base = CosimConfig {
        workload_scale: 0.15,
        max_cycles: 1_000_000,
        ..CosimConfig::default()
    };
    let profile = ScenarioId::Bfs.profile();

    println!("running `bfs` with a 70% performance-goal DFS governor...\n");

    let conv = Cosim::builder(
        &CosimConfig {
            pds: PdsKind::ConventionalVrm,
            ..base.clone()
        },
        &profile,
    )
    .power_management(PowerManagement {
        dfs: Some(DfsConfig::with_goal(0.7)),
        ..PowerManagement::default()
    })
    .build()
    .run();

    let vs = Cosim::builder(
        &CosimConfig {
            pds: PdsKind::VsCrossLayer { area_mult: 0.2 },
            ..base
        },
        &profile,
    )
    .power_management(PowerManagement {
        dfs: Some(DfsConfig::with_goal(0.7)),
        use_hypervisor: true, // Algorithm 2 bounds the layer imbalance
        ..PowerManagement::default()
    })
    .build()
    .run();

    for (label, r) in [
        ("conventional + DFS", &conv),
        ("voltage-stacked + DFS + hypervisor", &vs),
    ] {
        println!("{label}:");
        println!("  average clock scale : {:.2}", r.avg_freq_scale);
        println!("  PDE                 : {:.1} %", 100.0 * r.pde());
        println!(
            "  board input energy  : {:.3} mJ",
            1e3 * r.ledger.board_input_j
        );
        let f = r.imbalance.fractions();
        println!(
            "  layer imbalance     : {:.0}% of cycles < 10%, {:.0}% < 40%",
            100.0 * f[0],
            100.0 * (f[0] + f[1] + f[2])
        );
        println!();
    }

    let saving = 1.0 - vs.ledger.board_input_j / conv.ledger.board_input_j;
    println!(
        "energy saved by stacking under DFS: {:.1} % (paper: 7-13 %)",
        100.0 * saving
    );
}
