//! Quickstart: co-simulate one benchmark on the cross-layer voltage-stacked
//! GPU and compare its power delivery efficiency with the conventional PDS.
//!
//! Run with: `cargo run --release --example quickstart`

use vs_core::{run_scenario, CosimConfig, PdsKind, ScenarioId};

fn main() {
    // Keep the example snappy: a shortened kernel (about a tenth of the
    // full figure-generation length).
    let base = CosimConfig {
        workload_scale: 0.1,
        max_cycles: 600_000,
        ..CosimConfig::default()
    };

    println!("co-simulating `hotspot` on two power-delivery subsystems...\n");

    let conventional = run_scenario(
        &CosimConfig {
            pds: PdsKind::ConventionalVrm,
            ..base.clone()
        },
        ScenarioId::Hotspot,
    );
    let cross_layer = run_scenario(
        &CosimConfig {
            pds: PdsKind::VsCrossLayer { area_mult: 0.2 },
            ..base
        },
        ScenarioId::Hotspot,
    );

    for r in [&conventional, &cross_layer] {
        println!("{}:", r.pds.label());
        println!("  cycles            : {}", r.cycles);
        println!("  instructions      : {}", r.instructions);
        println!("  PDE               : {:.1} %", 100.0 * r.pde());
        println!(
            "  SM voltage range  : {:.3} .. {:.3} V",
            r.min_sm_voltage, r.max_sm_voltage
        );
        println!(
            "  board input energy: {:.3} mJ",
            1e3 * r.ledger.board_input_j
        );
        println!();
    }

    let delta = cross_layer.pde() - conventional.pde();
    println!(
        "voltage stacking improves delivery efficiency by {:.1} percentage points",
        100.0 * delta
    );
    println!("(the paper reports +12.3 points: 92.3% vs 80%)");
}
