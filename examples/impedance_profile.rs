//! Effective-impedance analysis of the stacked PDN (the paper's Fig. 3):
//! shows why the inter-layer *residual* (imbalance) current is the
//! reliability bottleneck and how the CR-IVR suppresses it.
//!
//! Run with: `cargo run --release --example impedance_profile`

use vs_pds::{impedance_profile, AreaModel, CrIvrConfig, ImpedanceProfile, PdnParams, StackedPdn};

fn main() {
    let params = PdnParams::default();
    let area = AreaModel::default();

    let bare = StackedPdn::build(&params, None);
    let crivr = CrIvrConfig::cross_layer_default(&area);
    let regulated = StackedPdn::build(&params, Some((&crivr, &area)));

    for (label, pdn) in [("without CR-IVR", &bare), ("with 0.2x CR-IVR", &regulated)] {
        let p = impedance_profile(pdn, 1e5, 500e6, 30).expect("AC sweep");
        let (f_g, z_g) = ImpedanceProfile::peak(&p.z_global, &p.freqs);
        let (f_r, z_r) = ImpedanceProfile::peak(&p.z_residual_same_layer, &p.freqs);
        println!("{label}:");
        println!(
            "  global    Z_G  peaks at {:.1} MHz with {:.3e} ohm (resonance)",
            f_g / 1e6,
            z_g
        );
        println!(
            "  residual  Z_R  peaks at {:.2} MHz with {:.3e} ohm",
            f_r / 1e6,
            z_r
        );
        println!(
            "  low-frequency dominance: Z_R / Z_G = {:.0}x",
            p.z_residual_same_layer[0] / p.z_global[0].max(1e-12)
        );
        println!();
    }
    println!("the residual (imbalance) impedance towers over everything at low");
    println!("frequency — exactly the band the architecture-level voltage");
    println!("smoothing loop is built to cover.");
}
