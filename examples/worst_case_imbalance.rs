//! Worst-case imbalance study (the paper's Fig. 9 scenario): gate every SM
//! of one stack layer at 3 us and watch the remaining layers' supply.
//!
//! Run with: `cargo run --release --example worst_case_imbalance`

use vs_core::{run_worst_case, WorstCaseConfig};

fn main() {
    println!("gating one full stack layer at t = 3 us ...\n");
    let configs = [
        ("circuit-only, 2.0x GPU-die CR-IVR", 2.0, false),
        ("circuit-only, 0.2x GPU-die CR-IVR", 0.2, false),
        ("cross-layer,  0.2x GPU-die CR-IVR", 0.2, true),
    ];
    for (label, area, cross_layer) in configs {
        let r = run_worst_case(&WorstCaseConfig {
            area_mult: area,
            cross_layer,
            ..WorstCaseConfig::default()
        });
        let verdict = if r.worst_voltage >= 0.78 {
            "survives the 0.2 V guardband region"
        } else {
            "collapses"
        };
        println!("{label}:");
        println!(
            "  worst voltage {:.3} V, final voltage {:.3} V -> {verdict}",
            r.worst_voltage, r.final_voltage
        );
    }
    println!();
    println!("the cross-layer controller lets a 0.2x regulator match what the");
    println!("circuit-only design needs ~2x of the GPU's die area to do — the");
    println!("paper's 88% area reduction.");
}
