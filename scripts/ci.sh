#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
#
# Usage: scripts/ci.sh [--golden]
#   (no flag)  tier-1: build + tests + clippy + rustdoc
#   --golden   tier-2: the golden-artifact regression suite on the
#              reduced-cycle golden profile. Re-runs the full experiment
#              catalogue, diffs it against goldens/*.jsonl under
#              goldens/tolerances.json, asserts every EXPERIMENTS.md
#              headline claim, checks sweep determinism across worker
#              counts, round-trips `sweep --resume` through the real binary
#              against injected damage, diffs the fault-injection
#              campaign byte-for-byte against goldens/fault_campaign.jsonl,
#              diffs the dse Pareto frontier against
#              goldens/dse_frontier.jsonl under the shared tolerances,
#              and refreshes the batched lane-scaling row in
#              BENCH_hotpath.json. Leaves the suite manifest at target/sweep/
#              as the uploadable artifact.
#
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--golden" ]]; then
    echo "== golden suite (tier-2) =="
    cargo build --release -p vs-bench
    cargo test --release -q -p vs-bench --test golden -- --ignored
    echo "== sweep artifact =="
    cargo run --release -q -p vs-bench --bin sweep -- \
        run --profile golden --out target/sweep --diff goldens
    echo "== dse frontier artifact =="
    # Deterministic tiny-grid frontier at the golden profile, diffed
    # against the blessed artifact under the shared tolerances.
    cargo run --release -q -p vs-bench --bin dse -- \
        --profile golden --deterministic --out target/dse-golden \
        --progress off --diff goldens/dse_frontier.jsonl \
        --tolerances goldens/tolerances.json > /dev/null
    echo "dse frontier golden: OK"
    echo "== fault-campaign artifact =="
    # The campaign artifact carries no wall-time events, so the golden is
    # compared byte-for-byte at the golden profile.
    VS_BENCH_SCALE=0.04 VS_BENCH_MAX_CYCLES=250000 \
        cargo run --release -q -p vs-bench --bin fault_campaign -- \
        --json target/fault_campaign.jsonl > /dev/null
    diff goldens/fault_campaign.jsonl target/fault_campaign.jsonl \
        && echo "fault-campaign golden: OK"
    echo "== batched lane-scaling record =="
    # Re-measures per-lane SoA solve cost at N=1/2/4/8 (asserting it falls
    # monotonically) and rewrites the lane_scaling_record row of the
    # committed artifact in place.
    VS_BENCH_SCALE=0.04 VS_BENCH_MAX_CYCLES=250000 \
        cargo run --release -q -p vs-bench --bin bench_hotpath -- \
        --record-lane-scaling BENCH_hotpath.json > /dev/null
    echo "suite manifest artifact: target/sweep/manifest.jsonl"
    echo "tier-2 golden gate: OK"
    exit 0
fi

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== pooled workspace reuse + sharded-sweep determinism =="
cargo test --release -q -p vs-core --test workspace_reuse
cargo test --release -q -p vs-bench --test sweep_shard

echo "== batched SoA solving: differential + property + mask-fuzz suites =="
cargo test --release -q -p vs-circuit --test batched_vs_scalar
cargo test --release -q -p vs-circuit --test lane_permutation
cargo test --release -q -p vs-circuit --test batched_mask_fuzz

echo "== chaos smoke: panic/stall/torn-write survival + journaled resume =="
cargo test --release -q -p vs-bench --test chaos
cargo test --release -q -p vs-bench --test resume
cargo test --release -q -p vs-bench --test campaign_jobs

echo "== observability: traced chaos sweep, run report, baseline diff =="
cargo test --release -q -p vs-bench --test trace_report

echo "== dse: determinism matrix + torn-write resume, frontier claims =="
cargo test --release -q -p vs-bench --test dse
# Tiny grid: the frontier claims (paper cell non-dominated) must pass.
cargo run --release -q -p vs-bench --bin dse -- \
    --profile tiny --out target/dse-smoke --progress off > /dev/null
# Full 1728-point grid through the sharded queue at the tiny profile.
cargo run --release -q -p vs-bench --bin dse -- \
    --grid full --profile tiny --jobs 0 --batch-lanes 4 \
    --out target/dse-full --progress off > /dev/null
echo "dse smoke (tiny + full grid): OK"

echo "== diff-baseline self-check =="
# The regression gate must accept a store against itself and reject a
# tolerance-violating perturbation with a nonzero exit.
SWEEP=target/release/sweep
"$SWEEP" diff-baseline goldens goldens > /dev/null \
    && echo "diff-baseline goldens vs goldens: OK (exit 0)"
PERTURBED=$(mktemp -d)
trap 'rm -rf "$PERTURBED"' EXIT
cp goldens/*.jsonl "$PERTURBED"/
sed -i 's/"pde_avg{pds=ivr}":0\./"pde_avg{pds=ivr}":9./' "$PERTURBED/fig8.jsonl"
if "$SWEEP" diff-baseline goldens "$PERTURBED" > /dev/null 2>&1; then
    echo "diff-baseline accepted a perturbed candidate" >&2
    exit 1
fi
echo "diff-baseline perturbed candidate: OK (nonzero exit)"

echo "== serve smoke: stdio session, content-addressed cache hit =="
# Two cold processes against one store: the first computes and journals,
# the second must answer `cached` and a byte-identical `done` line (the
# concurrency and torn-entry halves of the contract live in the serve and
# cli_contract test suites above).
cargo test --release -q -p vs-bench --test serve
cargo test --release -q -p vs-bench --test cli_contract
SERVE=target/release/serve
SERVE_STORE=$(mktemp -d)
SERVE_REQ='{"id":"s1","kind":"experiment","experiment":"table1"}
{"id":"s2","kind":"shutdown"}'
FIRST=$(printf '%s\n' "$SERVE_REQ" | "$SERVE" --stdio --profile tiny \
    --store "$SERVE_STORE" --progress off 2> /dev/null)
SECOND=$(printf '%s\n' "$SERVE_REQ" | "$SERVE" --stdio --profile tiny \
    --store "$SERVE_STORE" --progress off 2> /dev/null)
rm -rf "$SERVE_STORE"
grep -q '"name":"running"' <<< "$FIRST" \
    || { echo "serve smoke: first run did not compute" >&2; exit 1; }
grep -q '"name":"cached"' <<< "$SECOND" \
    || { echo "serve smoke: second run missed the store" >&2; exit 1; }
diff <(grep '"name":"done"' <<< "$FIRST") <(grep '"name":"done"' <<< "$SECOND") \
    || { echo "serve smoke: responses diverged" >&2; exit 1; }
echo "serve smoke (cold-store cache hit, byte-identical response): OK"

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "tier-1 gate: OK"
