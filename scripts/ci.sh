#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "tier-1 gate: OK"
